//! Capacity-enforced local device memory (LDM) accounting.
//!
//! Each CPE of the SW26010-pro has 256 KiB of software-managed scratchpad.
//! Kernels in this simulator must obtain their working buffers through
//! [`LdmState::alloc`], which fails hard when the scratchpad would overflow —
//! the same constraint that shaped the paper's operator designs ("this array
//! is too large to place on LDM", §2.4).

use crate::error::SunwayError;
use std::cell::Cell;
use std::rc::Rc;

/// Book-keeping for one CPE's scratchpad. Single-threaded by construction
/// (a CPE runs one kernel), hence `Rc<Cell>`.
#[derive(Debug)]
pub struct LdmState {
    cpe: usize,
    capacity: usize,
    used: Cell<usize>,
    peak: Cell<usize>,
}

impl LdmState {
    /// Fresh scratchpad of `capacity` bytes for CPE `cpe`.
    pub fn new(cpe: usize, capacity: usize) -> Rc<Self> {
        Rc::new(LdmState {
            cpe,
            capacity,
            used: Cell::new(0),
            peak: Cell::new(0),
        })
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// High-water mark.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak.get()
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates an LDM-resident buffer of `len` elements of `T`, zeroed
    /// (via `Default`).
    pub fn alloc<T: Clone + Default>(
        self: &Rc<Self>,
        len: usize,
    ) -> Result<LdmVec<T>, SunwayError> {
        let bytes = len * std::mem::size_of::<T>();
        let used = self.used.get();
        if used + bytes > self.capacity {
            return Err(SunwayError::LdmOverflow {
                cpe: self.cpe,
                requested: bytes,
                available: self.capacity - used,
                capacity: self.capacity,
            });
        }
        self.used.set(used + bytes);
        self.peak.set(self.peak.get().max(used + bytes));
        Ok(LdmVec {
            data: vec![T::default(); len],
            bytes,
            ldm: Rc::clone(self),
        })
    }
}

/// A buffer living in (accounted) LDM. Dereferences to a slice; releasing it
/// returns the bytes to the scratchpad.
#[derive(Debug)]
pub struct LdmVec<T> {
    data: Vec<T>,
    bytes: usize,
    ldm: Rc<LdmState>,
}

impl<T> Drop for LdmVec<T> {
    fn drop(&mut self) {
        self.ldm.used.set(self.ldm.used.get() - self.bytes);
    }
}

impl<T> std::ops::Deref for LdmVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for LdmVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let ldm = LdmState::new(0, 1024);
        let a = ldm.alloc::<f32>(64).unwrap(); // 256 B
        assert_eq!(ldm.used(), 256);
        {
            let _b = ldm.alloc::<u8>(512).unwrap();
            assert_eq!(ldm.used(), 768);
            assert_eq!(ldm.peak(), 768);
        }
        assert_eq!(ldm.used(), 256, "drop frees");
        assert_eq!(ldm.peak(), 768, "peak persists");
        drop(a);
        assert_eq!(ldm.used(), 0);
    }

    #[test]
    fn overflow_is_a_hard_error() {
        let ldm = LdmState::new(3, 100);
        let _a = ldm.alloc::<u8>(90).unwrap();
        let err = ldm.alloc::<u8>(20).unwrap_err();
        match err {
            SunwayError::LdmOverflow {
                cpe,
                requested,
                available,
                capacity,
            } => {
                assert_eq!(cpe, 3);
                assert_eq!(requested, 20);
                assert_eq!(available, 10);
                assert_eq!(capacity, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn buffers_are_usable_slices() {
        let ldm = LdmState::new(0, 4096);
        let mut v = ldm.alloc::<f32>(8).unwrap();
        v[3] = 7.5;
        assert_eq!(v[3], 7.5);
        assert_eq!(v.iter().filter(|&&x| x == 0.0).count(), 7);
    }

    #[test]
    fn exact_fit_succeeds() {
        let ldm = LdmState::new(0, 256);
        let v = ldm.alloc::<u8>(256).unwrap();
        assert_eq!(v.len(), 256);
        assert!(ldm.alloc::<u8>(1).is_err());
    }

    #[test]
    fn paper_operator_working_set_fits_real_ldm() {
        // The fast feature operator keeps NET + VET copy + TABLE in LDM
        // (paper §3.4). Check the real sizes fit in 256 KiB:
        // NET: 253 sites x 112 neighbours x 8 B (id + shell padded) = 227 KB
        // is too big; the operator streams NET rows instead — emulate the
        // realistic resident set: one NET row + VET + TABLE + feature rows.
        let ldm = LdmState::new(0, 256 * 1024);
        let _net_row = ldm.alloc::<u32>(112).unwrap();
        let _vet = ldm.alloc::<u8>(1181).unwrap();
        let _table = ldm.alloc::<f64>(8 * 32).unwrap();
        let _features = ldm.alloc::<f64>(9 * 64).unwrap(); // 1 + 8 states
        assert!(ldm.used() < 256 * 1024);
    }
}
