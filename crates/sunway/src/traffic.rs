//! Traffic accounting: the measured quantities behind the roofline analysis.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters shared by all CPEs of a core group.
///
/// DMA bytes are main-memory traffic; RMA bytes stay on the CPE mesh. The
/// distinction is the entire point of the big-fusion operator (paper §3.5):
/// it replaces per-layer DMA round-trips with RMA weight sharing.
#[derive(Debug, Default)]
pub struct TrafficCounter {
    dma_get: AtomicU64,
    dma_put: AtomicU64,
    rma: AtomicU64,
    rma_transfers: AtomicU64,
    flops: AtomicU64,
}

impl TrafficCounter {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a DMA read from main memory.
    #[inline]
    pub fn add_dma_get(&self, bytes: u64) {
        self.dma_get.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a DMA write to main memory.
    #[inline]
    pub fn add_dma_put(&self, bytes: u64) {
        self.dma_put.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one mesh (RMA) transfer of `bytes` bytes.
    #[inline]
    pub fn add_rma(&self, bytes: u64) {
        self.rma.fetch_add(bytes, Ordering::Relaxed);
        self.rma_transfers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records floating-point work.
    #[inline]
    pub fn add_flops(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.dma_get.store(0, Ordering::Relaxed);
        self.dma_put.store(0, Ordering::Relaxed);
        self.rma.store(0, Ordering::Relaxed);
        self.rma_transfers.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            dma_get_bytes: self.dma_get.load(Ordering::Relaxed),
            dma_put_bytes: self.dma_put.load(Ordering::Relaxed),
            rma_bytes: self.rma.load(Ordering::Relaxed),
            rma_transfers: self.rma_transfers.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
        }
    }
}

/// An immutable snapshot of traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes read from main memory.
    pub dma_get_bytes: u64,
    /// Bytes written to main memory.
    pub dma_put_bytes: u64,
    /// Bytes moved across the CPE mesh.
    pub rma_bytes: u64,
    /// Number of RMA transfers those bytes took (each transfer is one mesh
    /// round-trip of latency, so batched kernels want this constant per
    /// invocation, not proportional to batch size).
    pub rma_transfers: u64,
    /// Floating-point operations performed.
    pub flops: u64,
}

impl TrafficReport {
    /// Total main-memory traffic (the denominator of the paper's arithmetic
    /// intensity).
    #[inline]
    pub fn main_memory_bytes(&self) -> u64 {
        self.dma_get_bytes + self.dma_put_bytes
    }

    /// Arithmetic intensity in FLOP per main-memory byte. `f64::INFINITY`
    /// when no main memory was touched.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.main_memory_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / b as f64
        }
    }

    /// How many times less main memory this report touched than
    /// `baseline` — the headline number when comparing kernel variants
    /// (dense (1+8)·N feature batches vs unique-row batches, say).
    /// `f64::INFINITY` when this report touched none.
    pub fn reduction_vs(&self, baseline: &TrafficReport) -> f64 {
        let mine = self.main_memory_bytes();
        if mine == 0 {
            f64::INFINITY
        } else {
            baseline.main_memory_bytes() as f64 / mine as f64
        }
    }

    /// Difference `self - earlier` (for bracketing a kernel).
    pub fn since(&self, earlier: &TrafficReport) -> TrafficReport {
        TrafficReport {
            dma_get_bytes: self.dma_get_bytes - earlier.dma_get_bytes,
            dma_put_bytes: self.dma_put_bytes - earlier.dma_put_bytes,
            rma_bytes: self.rma_bytes - earlier.rma_bytes,
            rma_transfers: self.rma_transfers - earlier.rma_transfers,
            flops: self.flops - earlier.flops,
        }
    }

    /// Bridges the report into a telemetry registry: overwrites the
    /// `sunway.*` counters with the report's totals and sets the derived
    /// arithmetic-intensity gauge, so DMA/RMA traffic lands in the same
    /// JSONL records and end-of-run table as the KMC phase timers.
    pub fn record_into(&self, registry: &tensorkmc_telemetry::Registry) {
        use tensorkmc_telemetry::keys;
        registry.counter(keys::SW_DMA_GET).store(self.dma_get_bytes);
        registry.counter(keys::SW_DMA_PUT).store(self.dma_put_bytes);
        registry.counter(keys::SW_RMA).store(self.rma_bytes);
        registry
            .counter(keys::SW_RMA_TRANSFERS)
            .store(self.rma_transfers);
        registry.counter(keys::SW_FLOPS).store(self.flops);
        let ai = self.arithmetic_intensity();
        if ai.is_finite() {
            registry.gauge(keys::SW_ARITHMETIC_INTENSITY).set(ai);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = TrafficCounter::new();
        t.add_dma_get(100);
        t.add_dma_get(50);
        t.add_dma_put(30);
        t.add_rma(7);
        t.add_flops(1000);
        let r = t.report();
        assert_eq!(r.dma_get_bytes, 150);
        assert_eq!(r.dma_put_bytes, 30);
        assert_eq!(r.rma_bytes, 7);
        assert_eq!(r.rma_transfers, 1);
        assert_eq!(r.main_memory_bytes(), 180);
        assert!((r.arithmetic_intensity() - 1000.0 / 180.0).abs() < 1e-12);
    }

    #[test]
    fn rma_does_not_count_as_main_memory() {
        let t = TrafficCounter::new();
        t.add_rma(1 << 20);
        t.add_flops(10);
        let r = t.report();
        assert_eq!(r.main_memory_bytes(), 0);
        assert_eq!(r.arithmetic_intensity(), f64::INFINITY);
    }

    #[test]
    fn reset_and_since() {
        let t = TrafficCounter::new();
        t.add_dma_get(10);
        let snap = t.report();
        t.add_dma_get(15);
        t.add_flops(3);
        let delta = t.report().since(&snap);
        assert_eq!(delta.dma_get_bytes, 15);
        assert_eq!(delta.flops, 3);
        t.reset();
        assert_eq!(t.report().main_memory_bytes(), 0);
    }

    #[test]
    fn reduction_ratio_against_a_baseline() {
        let dense = TrafficCounter::new();
        dense.add_dma_get(900);
        dense.add_dma_put(100);
        let delta = TrafficCounter::new();
        delta.add_dma_get(150);
        delta.add_dma_put(100);
        let r = delta.report().reduction_vs(&dense.report());
        assert!((r - 4.0).abs() < 1e-12);
        assert_eq!(
            TrafficCounter::new().report().reduction_vs(&dense.report()),
            f64::INFINITY
        );
    }

    #[test]
    fn record_into_bridges_to_registry() {
        use tensorkmc_telemetry::{keys, Registry};
        let t = TrafficCounter::new();
        t.add_dma_get(640);
        t.add_dma_put(160);
        t.add_rma(4096);
        t.add_flops(8000);
        let registry = Registry::new();
        t.report().record_into(&registry);
        // A second bridge overwrites (store semantics), not double-counts.
        t.report().record_into(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(keys::SW_DMA_GET), Some(640));
        assert_eq!(snap.counter(keys::SW_DMA_PUT), Some(160));
        assert_eq!(snap.counter(keys::SW_RMA), Some(4096));
        assert_eq!(snap.counter(keys::SW_FLOPS), Some(8000));
        let ai = snap.gauge(keys::SW_ARITHMETIC_INTENSITY).unwrap();
        assert!((ai - 8000.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        use std::sync::Arc;
        let t = Arc::new(TrafficCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.add_flops(1);
                        t.add_dma_get(2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let r = t.report();
        assert_eq!(r.flops, 8000);
        assert_eq!(r.dma_get_bytes, 16000);
    }
}
