//! A software simulator of one SW26010-pro core group (CG).
//!
//! The paper's operator innovations (§3.4, §3.5) are *data-movement*
//! algorithms for a heterogeneous many-core processor: one management
//! processing element (MPE), 64 computing processing elements (CPEs) in an
//! 8×8 mesh, each with a small software-managed local device memory (LDM),
//! asynchronous DMA to main memory, and remote scratchpad access (RMA)
//! between CPEs.
//!
//! We do not have the hardware, so this crate *simulates the contract*
//! (DESIGN.md documents the substitution):
//!
//! * CPE kernels run as real host threads (rayon pool) — results are real;
//! * every LDM allocation goes through a capacity-enforced tracker
//!   ([`ldm::LdmState`]): exceeding 256 KiB is a hard error, exactly as it
//!   would fail to link on the real machine;
//! * every DMA/RMA transfer is an explicit call that moves the bytes *and*
//!   counts them ([`traffic::TrafficCounter`]); a kernel cannot touch main
//!   memory except through DMA, so the byte counts in the Fig. 9/10/11
//!   harnesses are exact, not estimated;
//! * a calibrated [`roofline::Roofline`] model (ridge point 43.63 FLOP/B,
//!   matching paper Fig. 9) converts counted flops and bytes into attainable
//!   time, which is what the scaling and serial-comparison harnesses report
//!   alongside measured wall-clock.

#![warn(missing_docs)]

pub mod arch;
pub mod cg;
pub mod dma;
pub mod error;
pub mod ldm;
pub mod roofline;
pub mod traffic;

pub use arch::CgConfig;
pub use cg::{CoreGroup, CpeCtx};
pub use dma::{state_flow, DoubleBuffer};
pub use error::SunwayError;
pub use ldm::{LdmState, LdmVec};
pub use roofline::Roofline;
pub use traffic::{TrafficCounter, TrafficReport};
