//! Double-buffered DMA state flow (paper Fig. 6e).
//!
//! The big-fusion operator streams AKMC states through a CPE: while state
//! `k` is being computed from one LDM buffer, state `k−1`'s result is DMA'd
//! back and state `k+1`'s input is DMA'd in through the other. This module
//! provides that pattern as a reusable primitive with the same LDM/DMA
//! accounting as hand-rolled kernels.

use crate::cg::CpeCtx;
use crate::error::SunwayError;
use crate::ldm::LdmVec;

/// A pair of same-sized LDM buffers with an active/staging role swap.
pub struct DoubleBuffer<T> {
    bufs: [LdmVec<T>; 2],
    active: usize,
}

impl<T: Clone + Default> DoubleBuffer<T> {
    /// Allocates both halves from the CPE's scratchpad.
    pub fn new(ctx: &CpeCtx, len: usize) -> Result<Self, SunwayError> {
        Ok(DoubleBuffer {
            bufs: [ctx.ldm_alloc::<T>(len)?, ctx.ldm_alloc::<T>(len)?],
            active: 0,
        })
    }

    /// The buffer currently being computed on.
    pub fn active(&self) -> &[T] {
        &self.bufs[self.active]
    }

    /// Mutable view of the active buffer.
    pub fn active_mut(&mut self) -> &mut [T] {
        &mut self.bufs[self.active]
    }

    /// Mutable view of the staging buffer (the DMA target).
    pub fn staging_mut(&mut self) -> &mut [T] {
        &mut self.bufs[1 - self.active]
    }

    /// Promotes the staging buffer to active (the Fig. 6e hand-over).
    pub fn swap(&mut self) {
        self.active = 1 - self.active;
    }
}

/// Streams `states` through `compute` with double-buffered input and output
/// (the per-state analogue of Alg. 1's outer loop): state `k`'s input is
/// prefetched while `k−1` computes, and results are put back as soon as the
/// next computation starts. Functionally equal to a sequential loop; the
/// value is that LDM residency stays at two in-buffers + two out-buffers
/// regardless of the number of states, with every byte DMA-counted.
pub fn state_flow<T, F>(
    ctx: &CpeCtx,
    states: &[&[T]],
    out_len: usize,
    mut compute: F,
) -> Result<Vec<Vec<T>>, SunwayError>
where
    T: Copy + Clone + Default,
    F: FnMut(&CpeCtx, &[T], &mut [T]),
{
    if states.is_empty() {
        return Ok(Vec::new());
    }
    let in_len = states[0].len();
    if let Some(bad) = states.iter().find(|s| s.len() != in_len) {
        return Err(SunwayError::DmaShapeMismatch {
            src: bad.len(),
            dst: in_len,
        });
    }
    let mut input = DoubleBuffer::<T>::new(ctx, in_len)?;
    let mut output = DoubleBuffer::<T>::new(ctx, out_len)?;
    let mut results: Vec<Vec<T>> = Vec::with_capacity(states.len());

    // Prime: fetch state 0 into the active input buffer.
    ctx.dma_get(states[0], input.active_mut())?;
    for k in 0..states.len() {
        // Prefetch k+1 into staging while "computing" k (sequential on the
        // simulator, overlapped on real hardware — the byte counts and the
        // buffer discipline are identical).
        if k + 1 < states.len() {
            ctx.dma_get(states[k + 1], input.staging_mut())?;
        }
        compute(ctx, input.active(), output.active_mut());
        // Put back k's result.
        let mut main_out = vec![T::default(); out_len];
        ctx.dma_put(output.active(), &mut main_out)?;
        results.push(main_out);
        input.swap();
        output.swap();
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::CgConfig;
    use crate::cg::CoreGroup;

    #[test]
    fn state_flow_matches_sequential_computation() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let states: Vec<Vec<f32>> = (0..5)
            .map(|k| (0..8).map(|i| (k * 8 + i) as f32).collect())
            .collect();
        let refs: Vec<&[f32]> = states.iter().map(|v| v.as_slice()).collect();
        let outs = cg
            .run_collect(|ctx| {
                state_flow(ctx, &refs, 2, |ctx, x, y| {
                    y[0] = x.iter().sum();
                    y[1] = x.iter().cloned().fold(f32::MIN, f32::max);
                    ctx.flops(x.len() as u64 * 2);
                })
            })
            .unwrap();
        for per_cpe in outs {
            assert_eq!(per_cpe.len(), 5);
            for (k, out) in per_cpe.iter().enumerate() {
                let want_sum: f32 = states[k].iter().sum();
                assert_eq!(out[0], want_sum);
                assert_eq!(out[1], *states[k].last().unwrap());
            }
        }
    }

    #[test]
    fn dma_accounting_covers_every_state_once() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let states: Vec<Vec<f32>> = (0..4).map(|_| vec![1.0; 16]).collect();
        let refs: Vec<&[f32]> = states.iter().map(|v| v.as_slice()).collect();
        cg.reset_traffic();
        cg.run(|ctx| state_flow(ctx, &refs, 4, |_, _, y| y.fill(0.0)).map(|_| ()))
            .unwrap();
        let t = cg.traffic();
        let n_cpes = cg.config().n_cpes as u64;
        assert_eq!(t.dma_get_bytes, n_cpes * 4 * 16 * 4, "each input once");
        assert_eq!(t.dma_put_bytes, n_cpes * 4 * 4 * 4, "each output once");
    }

    #[test]
    fn ldm_residency_is_two_pairs_of_buffers() {
        // Streaming 100 states must not need more LDM than streaming 2.
        let cg = CoreGroup::new(CgConfig::test_tiny()); // 4 KiB LDM
        let states: Vec<Vec<f32>> = (0..100).map(|_| vec![0.5; 128]).collect(); // 512 B each
        let refs: Vec<&[f32]> = states.iter().map(|v| v.as_slice()).collect();
        // 2×512 in + 2×512 out = 2 KiB < 4 KiB even for 100 states.
        cg.run(|ctx| state_flow(ctx, &refs, 128, |_, x, y| y.copy_from_slice(x)).map(|_| ()))
            .unwrap();
    }

    #[test]
    fn ragged_states_rejected() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let a = vec![0.0f32; 8];
        let b = vec![0.0f32; 9];
        let refs: Vec<&[f32]> = vec![&a, &b];
        let err = cg
            .run(|ctx| state_flow(ctx, &refs, 1, |_, _, _| {}).map(|_| ()))
            .unwrap_err();
        assert!(matches!(err, SunwayError::DmaShapeMismatch { .. }));
    }

    #[test]
    fn double_buffer_swap_roles() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        cg.run(|ctx| {
            let mut db = DoubleBuffer::<u8>::new(ctx, 4)?;
            db.active_mut().fill(1);
            db.staging_mut().fill(2);
            assert_eq!(db.active(), &[1, 1, 1, 1]);
            db.swap();
            assert_eq!(db.active(), &[2, 2, 2, 2]);
            Ok(())
        })
        .unwrap();
    }
}
