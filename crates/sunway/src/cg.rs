//! The core group: an MPE (the calling thread) driving 64 CPE workers.

use crate::arch::CgConfig;
use crate::error::SunwayError;
use crate::ldm::{LdmState, LdmVec};
use crate::traffic::{TrafficCounter, TrafficReport};
use std::rc::Rc;
use std::sync::Arc;
use tensorkmc_compat::pool;

/// One simulated core group.
///
/// The calling thread plays the MPE; [`CoreGroup::run`] dispatches a kernel
/// closure to every CPE (as pool tasks). All main-memory access inside a
/// kernel must go through the [`CpeCtx`] DMA methods so the traffic counters
/// stay exact.
pub struct CoreGroup {
    config: CgConfig,
    traffic: Arc<TrafficCounter>,
}

impl CoreGroup {
    /// Builds a core group.
    pub fn new(config: CgConfig) -> Self {
        CoreGroup {
            config,
            traffic: Arc::new(TrafficCounter::new()),
        }
    }

    /// The architecture configuration.
    #[inline]
    pub fn config(&self) -> &CgConfig {
        &self.config
    }

    /// Snapshot of accumulated traffic.
    pub fn traffic(&self) -> TrafficReport {
        self.traffic.report()
    }

    /// A shared handle to the live traffic counters, for reading traffic
    /// after the core group has been moved (e.g. boxed inside an evaluator).
    pub fn traffic_handle(&self) -> Arc<TrafficCounter> {
        Arc::clone(&self.traffic)
    }

    /// Zeroes the traffic counters.
    pub fn reset_traffic(&self) {
        self.traffic.reset();
    }

    /// Runs `kernel` once per CPE, in parallel, collecting each CPE's
    /// result. The whole call fails if any CPE fails (first error wins,
    /// lowest CPE id).
    pub fn run_collect<T, F>(&self, kernel: F) -> Result<Vec<T>, SunwayError>
    where
        T: Send,
        F: Fn(&mut CpeCtx) -> Result<T, SunwayError> + Sync,
    {
        let results: Vec<Result<T, SunwayError>> =
            pool::par_map_collect(self.config.n_cpes, |id| {
                let mut ctx = CpeCtx {
                    id,
                    config: self.config,
                    ldm: LdmState::new(id, self.config.ldm_bytes),
                    traffic: Arc::clone(&self.traffic),
                };
                kernel(&mut ctx)
            });
        // Surface the lowest-id error deterministically.
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        Ok(out)
    }

    /// Runs `kernel` once per CPE, discarding per-CPE values.
    pub fn run<F>(&self, kernel: F) -> Result<(), SunwayError>
    where
        F: Fn(&mut CpeCtx) -> Result<(), SunwayError> + Sync,
    {
        self.run_collect(kernel).map(|_| ())
    }

    /// Roofline time estimate (seconds) for a traffic snapshot on this CG:
    /// compute, main-memory, and mesh phases overlap, so the estimate is
    /// their maximum.
    pub fn estimate_time(&self, t: &TrafficReport) -> f64 {
        let compute = t.flops as f64 / self.config.peak_flops_sp;
        let mem = t.main_memory_bytes() as f64 / self.config.mem_bandwidth;
        let rma = t.rma_bytes as f64 / self.config.rma_bandwidth;
        compute.max(mem).max(rma)
    }
}

/// Per-CPE execution context handed to kernels.
pub struct CpeCtx {
    id: usize,
    config: CgConfig,
    ldm: Rc<LdmState>,
    traffic: Arc<TrafficCounter>,
}

impl CpeCtx {
    /// CPE id in `0..n_cpes`.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// `(row, col)` of this CPE in the 8×8 mesh.
    #[inline]
    pub fn mesh_pos(&self) -> (usize, usize) {
        self.config.mesh_pos(self.id)
    }

    /// Number of CPEs in the group.
    #[inline]
    pub fn n_cpes(&self) -> usize {
        self.config.n_cpes
    }

    /// The scratchpad tracker (for assertions in tests).
    #[inline]
    pub fn ldm(&self) -> &Rc<LdmState> {
        &self.ldm
    }

    /// Allocates an LDM buffer of `len` elements.
    pub fn ldm_alloc<T: Clone + Default>(&self, len: usize) -> Result<LdmVec<T>, SunwayError> {
        self.ldm.alloc(len)
    }

    /// DMA read: copies `src` (main memory) into `dst` (LDM) and counts the
    /// bytes.
    pub fn dma_get<T: Copy>(&self, src: &[T], dst: &mut [T]) -> Result<(), SunwayError> {
        if src.len() != dst.len() {
            return Err(SunwayError::DmaShapeMismatch {
                src: src.len(),
                dst: dst.len(),
            });
        }
        dst.copy_from_slice(src);
        self.traffic.add_dma_get(std::mem::size_of_val(src) as u64);
        Ok(())
    }

    /// DMA write: copies `src` (LDM) into `dst` (main memory) and counts the
    /// bytes.
    pub fn dma_put<T: Copy>(&self, src: &[T], dst: &mut [T]) -> Result<(), SunwayError> {
        if src.len() != dst.len() {
            return Err(SunwayError::DmaShapeMismatch {
                src: src.len(),
                dst: dst.len(),
            });
        }
        dst.copy_from_slice(src);
        self.traffic.add_dma_put(std::mem::size_of_val(src) as u64);
        Ok(())
    }

    /// RMA transfer: copies a peer CPE's (shared, read-only) buffer into LDM
    /// and counts mesh bytes. In the simulator peers publish through plain
    /// shared slices; what matters is that these bytes do NOT hit main
    /// memory.
    pub fn rma_get<T: Copy>(&self, src: &[T], dst: &mut [T]) -> Result<(), SunwayError> {
        if src.len() != dst.len() {
            return Err(SunwayError::DmaShapeMismatch {
                src: src.len(),
                dst: dst.len(),
            });
        }
        dst.copy_from_slice(src);
        self.traffic.add_rma(std::mem::size_of_val(src) as u64);
        Ok(())
    }

    /// Records `n` floating-point operations.
    #[inline]
    pub fn flops(&self, n: u64) {
        self.traffic.add_flops(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_run_on_every_cpe() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let ids = cg.run_collect(|ctx| Ok(ctx.id())).unwrap();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dma_moves_data_and_counts_bytes() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let main_in = vec![1.0f32, 2.0, 3.0, 4.0];
        let sums = cg
            .run_collect(|ctx| {
                let mut buf = ctx.ldm_alloc::<f32>(4)?;
                ctx.dma_get(&main_in, &mut buf)?;
                ctx.flops(3);
                Ok(buf.iter().sum::<f32>() as f64)
            })
            .unwrap();
        assert!(sums.iter().all(|&s| (s - 10.0f64).abs() < 1e-6));
        let t = cg.traffic();
        assert_eq!(t.dma_get_bytes, 4 * 16); // 4 CPEs x 16 B
        assert_eq!(t.flops, 12);
    }

    #[test]
    fn ldm_overflow_fails_the_whole_run() {
        let cg = CoreGroup::new(CgConfig::test_tiny()); // 4 KiB LDM
        let err = cg
            .run(|ctx| {
                let _big = ctx.ldm_alloc::<f64>(1024)?; // 8 KiB > 4 KiB
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SunwayError::LdmOverflow { .. }));
    }

    #[test]
    fn dma_shape_mismatch_reported() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let main_in = vec![0u8; 8];
        let err = cg
            .run(|ctx| {
                let mut buf = ctx.ldm_alloc::<u8>(4)?;
                ctx.dma_get(&main_in, &mut buf)
            })
            .unwrap_err();
        assert_eq!(err, SunwayError::DmaShapeMismatch { src: 8, dst: 4 });
    }

    #[test]
    fn rma_counts_separately_from_dma() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let shared = vec![1u32; 16];
        cg.run(|ctx| {
            let mut buf = ctx.ldm_alloc::<u32>(16)?;
            ctx.rma_get(&shared, &mut buf)
        })
        .unwrap();
        let t = cg.traffic();
        assert_eq!(t.rma_bytes, 4 * 64);
        assert_eq!(t.rma_transfers, 4); // one transfer per CPE
        assert_eq!(t.main_memory_bytes(), 0);
    }

    #[test]
    fn time_estimate_takes_the_binding_phase() {
        let cg = CoreGroup::new(CgConfig::default());
        let mem_bound = TrafficReport {
            dma_get_bytes: 1 << 30,
            dma_put_bytes: 0,
            rma_bytes: 0,
            rma_transfers: 0,
            flops: 10,
        };
        let t_mem = cg.estimate_time(&mem_bound);
        assert!((t_mem - (1u64 << 30) as f64 / cg.config().mem_bandwidth).abs() < 1e-12);
        let compute_bound = TrafficReport {
            dma_get_bytes: 8,
            dma_put_bytes: 0,
            rma_bytes: 0,
            rma_transfers: 0,
            flops: 1 << 40,
        };
        let t_cmp = cg.estimate_time(&compute_bound);
        assert!((t_cmp - (1u64 << 40) as f64 / cg.config().peak_flops_sp).abs() < 1e-12);
    }

    #[test]
    fn fresh_ldm_per_run() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        for _ in 0..3 {
            cg.run(|ctx| {
                // Allocates 3/4 of LDM; must succeed on every repetition.
                let _b = ctx.ldm_alloc::<u8>(3 * 1024)?;
                Ok(())
            })
            .unwrap();
        }
    }

    #[test]
    fn mesh_positions_exposed() {
        let cg = CoreGroup::new(CgConfig::test_tiny());
        let pos = cg
            .run_collect(|ctx| Ok((ctx.id(), ctx.mesh_pos())))
            .unwrap();
        for (id, (r, c)) in pos {
            assert_eq!(r, id / 2);
            assert_eq!(c, id % 2);
        }
    }
}
