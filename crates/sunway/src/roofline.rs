//! The roofline model of the energy kernels (paper Fig. 9).
//!
//! Besides the generic attainable-performance formula, this module contains
//! the analytic byte/flop accounting of the NNP convolution stack in its two
//! execution schedules:
//!
//! * **layer-at-a-time** (the "original fused operator": Conv2D+Bias+ReLU per
//!   layer, inputs and outputs round-tripping through main memory) — the
//!   paper reports per-layer intensities from 0.48 to 21.3 FLOP/B;
//! * **big-fusion** (all layers in one kernel: fetch the first input, put the
//!   last output, weights shared over RMA) — the paper reports 509.1 FLOP/B
//!   and a 56 MB → 2 MB traffic reduction for N,H,W = 32,16,16.

use crate::arch::CgConfig;

/// Attainable-performance roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak compute, FLOP/s.
    pub peak_flops: f64,
    /// Main-memory bandwidth, B/s.
    pub mem_bandwidth: f64,
}

impl Roofline {
    /// Roofline of a core group.
    pub fn from_config(c: &CgConfig) -> Self {
        Roofline {
            peak_flops: c.peak_flops_sp,
            mem_bandwidth: c.mem_bandwidth,
        }
    }

    /// Attainable FLOP/s at arithmetic intensity `ai` (FLOP/B).
    #[inline]
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.mem_bandwidth).min(self.peak_flops)
    }

    /// The ridge point (FLOP/B) separating memory- and compute-bound.
    #[inline]
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.mem_bandwidth
    }

    /// Whether a kernel of intensity `ai` is compute-bound on this machine.
    #[inline]
    pub fn is_compute_bound(&self, ai: f64) -> bool {
        ai >= self.ridge()
    }

    /// Fraction of peak attainable at intensity `ai`.
    #[inline]
    pub fn fraction_of_peak(&self, ai: f64) -> f64 {
        self.attainable(ai) / self.peak_flops
    }
}

/// Cost sheet of one NNP layer (1×1 conv ≡ dense over the batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// FLOPs (multiply-adds counted as 2, plus bias and ReLU).
    pub flops: u64,
    /// Main-memory bytes in the layer-at-a-time schedule.
    pub bytes: u64,
}

impl LayerCost {
    /// Arithmetic intensity of this layer run layer-at-a-time.
    #[inline]
    pub fn intensity(&self) -> f64 {
        self.flops as f64 / self.bytes as f64
    }
}

/// Analytic cost model of the convolution stack, in single precision.
///
/// `m = n·h·w` is the batch row count (paper Alg. 1 line 1).
#[derive(Debug, Clone, PartialEq)]
pub struct StackCost {
    /// Batch rows.
    pub m: usize,
    /// Channel widths, input first.
    pub channels: Vec<usize>,
    /// Per-layer costs for the layer-at-a-time schedule.
    pub layers: Vec<LayerCost>,
}

const F32: u64 = 4;

impl StackCost {
    /// Builds the cost sheet for batch rows `m` over `channels`.
    pub fn new(m: usize, channels: &[usize]) -> Self {
        assert!(channels.len() >= 2);
        let layers = channels
            .windows(2)
            .map(|w| {
                let (c_in, c_out) = (w[0], w[1]);
                // Matmul (2 flops per MAC) + bias add + ReLU compare.
                let flops = (2 * m * c_in * c_out) as u64 + (2 * m * c_out) as u64;
                // Layer-at-a-time: read input, read weights+bias, write output.
                let bytes = (m * c_in) as u64 * F32
                    + (c_in * c_out + c_out) as u64 * F32
                    + (m * c_out) as u64 * F32;
                LayerCost {
                    c_in,
                    c_out,
                    flops,
                    bytes,
                }
            })
            .collect();
        StackCost {
            m,
            channels: channels.to_vec(),
            layers,
        }
    }

    /// Total FLOPs of the stack (schedule-independent).
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Total main-memory bytes in the layer-at-a-time schedule.
    pub fn layerwise_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.bytes).sum()
    }

    /// Main-memory bytes in the big-fusion schedule: fetch the first layer's
    /// input and put the last layer's output; weights live in LDM/RMA
    /// (paper §3.5: "only two main memory accesses are required").
    pub fn fused_bytes(&self) -> u64 {
        let first = *self.channels.first().unwrap();
        let last = *self.channels.last().unwrap();
        (self.m * first) as u64 * F32 + (self.m * last) as u64 * F32
    }

    /// Arithmetic intensity of the fused schedule.
    pub fn fused_intensity(&self) -> f64 {
        self.total_flops() as f64 / self.fused_bytes() as f64
    }

    /// Arithmetic intensity of the layer-at-a-time schedule as a whole.
    pub fn layerwise_intensity(&self) -> f64 {
        self.total_flops() as f64 / self.layerwise_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact workload of paper Fig. 9: N,H,W = 32,16,16 and the
    /// (64,128,128,128,64,1) stack.
    fn fig9_stack() -> StackCost {
        StackCost::new(32 * 16 * 16, &[64, 128, 128, 128, 64, 1])
    }

    #[test]
    fn ridge_point_matches_paper() {
        let r = Roofline::from_config(&CgConfig::default());
        assert!((r.ridge() - 43.63).abs() < 1e-9);
    }

    #[test]
    fn attainable_clips_at_peak() {
        let r = Roofline {
            peak_flops: 100.0,
            mem_bandwidth: 10.0,
        };
        assert_eq!(r.attainable(1.0), 10.0);
        assert_eq!(r.attainable(10.0), 100.0);
        assert_eq!(r.attainable(1000.0), 100.0);
        assert!(r.is_compute_bound(10.0));
        assert!(!r.is_compute_bound(9.99));
    }

    #[test]
    fn fig9_per_layer_intensities_span_paper_range() {
        // Paper: per-layer intensity increases from 0.48 to 21.3.
        let s = fig9_stack();
        let ais: Vec<f64> = s.layers.iter().map(|l| l.intensity()).collect();
        let min = ais.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ais.iter().cloned().fold(0.0, f64::max);
        assert!((min - 0.48).abs() < 0.1, "min AI {min} ~ paper 0.48");
        // Paper quotes 21.3 as the top of the range, which matches our
        // 64->128 layer exactly; the symmetric 128->128 layers reach 32 in
        // our accounting. Either way every layer stays below the ridge.
        let first_ai = s.layers[0].intensity();
        assert!(
            (first_ai - 21.3).abs() < 0.5,
            "first-layer AI {first_ai} ~ paper 21.3"
        );
        assert!(max < 43.0, "max AI {max} below ridge");
        // All below the ridge: the layerwise schedule is memory-bound.
        let r = Roofline::from_config(&CgConfig::default());
        assert!(ais.iter().all(|&ai| !r.is_compute_bound(ai)));
    }

    #[test]
    fn fig9_fusion_turns_compute_bound() {
        let s = fig9_stack();
        let r = Roofline::from_config(&CgConfig::default());
        let ai = s.fused_intensity();
        assert!(
            ai > 300.0,
            "fused AI {ai} must be hundreds of FLOP/B (paper: 509.1)"
        );
        assert!(r.is_compute_bound(ai));
        assert!(!r.is_compute_bound(s.layerwise_intensity()));
    }

    #[test]
    fn fig9_traffic_reduction_order_of_magnitude() {
        // Paper: 56 MB -> 2 MB. Our accounting: layerwise tens of MB, fused
        // ~2 MB (dominated by the 64-channel input block).
        let s = fig9_stack();
        let layerwise_mb = s.layerwise_bytes() as f64 / 1e6;
        let fused_mb = s.fused_bytes() as f64 / 1e6;
        assert!(layerwise_mb > 25.0, "layerwise {layerwise_mb} MB");
        assert!(fused_mb < 2.5, "fused {fused_mb} MB");
        assert!(layerwise_mb / fused_mb > 10.0);
    }

    #[test]
    fn flops_are_schedule_independent() {
        let s = fig9_stack();
        // 2·M·ΣCinCout dominates.
        let macs: u64 = s
            .channels
            .windows(2)
            .map(|w| (s.m * w[0] * w[1]) as u64)
            .sum();
        assert!(s.total_flops() >= 2 * macs);
        assert!(s.total_flops() < 2 * macs + 2 * macs / 10);
    }

    #[test]
    fn fraction_of_peak_reaches_paper_claim() {
        // Paper: the big-fusion operator can reach 76.64% of peak at most.
        // At AI = 509 the roofline itself no longer limits the kernel, so the
        // attainable fraction is 100%; the paper's 76.64% includes pipeline
        // effects. Our model must at least allow >76%.
        let s = fig9_stack();
        let r = Roofline::from_config(&CgConfig::default());
        assert!(r.fraction_of_peak(s.fused_intensity()) > 0.7664);
    }
}
