//! The synchronous sublattice driver (Shim & Amar, paper §2.2 / Fig. 2b).
//!
//! Every rank owns a block of the box plus a ghost halo one vacancy-system
//! footprint wide. A *cycle* sweeps the 8 octant sectors; during sector `s`
//! every rank concurrently evolves only the vacancies inside its own octant
//! `s` for a fixed interval `t_stop`, which the decomposition guarantees can
//! never conflict with any other rank's concurrent events. At each sector
//! boundary two message phases run:
//!
//! 1. **remote modifications** — sites a rank changed inside its halo are
//!    sent to their owners;
//! 2. **halo refresh** — every rank re-imports its ghost sites from their
//!    owners.
//!
//! One full cycle advances the global clock by `t_stop`.
//!
//! The driver is generic over [`Transport`], so the same rank loop runs
//! threads-in-process ([`crate::comm::RankComm`]) and processes-across-hosts
//! ([`crate::tcp::TcpTransport`]) — and because each rank's RNG stream and
//! the message apply order (sorted peers, plan order) are transport-
//! independent, the two backends produce bit-identical trajectories.
//! Every communication step is fallible: a dead rank surfaces as one
//! attributable [`ParallelError`] (see [`collapse_errors`]) instead of a
//! cascade of per-neighbour panics.

use crate::checkpoint::{
    interior_coords, CheckpointWriter, ParallelCheckpoint, RankResume, RankState,
};
use crate::comm::{build_fabric_with_timeout, Msg, Transport, DEFAULT_RECV_TIMEOUT};
use crate::decomp::Decomposition;
use crate::error::ParallelError;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tensorkmc_compat::rng::StdRng;
use tensorkmc_core::{RateLaw, SumTree, VacancySystem};
use tensorkmc_lattice::{HalfVec, RegionGeometry, SiteArray, SiteIndexer, Species};
use tensorkmc_operators::VacancyEnergyEvaluator;
use tensorkmc_telemetry::{keys, Counter, Registry, Snapshot, SpanGuard, Timer, Tracer};

/// Cached telemetry handles for one rank's sector loop. Each rank thread
/// resolves its handles against its own rank-tagged child registry
/// ([`Registry::with_rank`]), so per-rank traffic stays attributable; the
/// children merge into the caller's registry after the ranks join.
#[derive(Clone)]
struct SectorTelemetry {
    sector: Arc<Timer>,
    sync: Arc<Timer>,
    barrier_wait: Arc<Timer>,
    sector_events: Arc<Counter>,
    boundary_rejections: Arc<Counter>,
    octant_exits: Arc<Counter>,
    halo_bytes: Arc<Counter>,
    remote_mods: Arc<Counter>,
    ghost_msgs: Arc<Counter>,
    tracer: Option<Arc<Tracer>>,
}

impl SectorTelemetry {
    fn new(registry: &Registry) -> Self {
        SectorTelemetry {
            sector: registry.timer(keys::PAR_SECTOR),
            sync: registry.timer(keys::PAR_SYNC),
            barrier_wait: registry.timer(keys::PAR_BARRIER_WAIT),
            sector_events: registry.counter(keys::PAR_SECTOR_EVENTS),
            boundary_rejections: registry.counter(keys::PAR_BOUNDARY_REJECTIONS),
            octant_exits: registry.counter(keys::PAR_OCTANT_EXITS),
            halo_bytes: registry.counter(keys::PAR_HALO_BYTES),
            remote_mods: registry.counter(keys::PAR_REMOTE_MODS),
            ghost_msgs: registry.counter(keys::PAR_GHOST_MSGS),
            tracer: registry.tracer(),
        }
    }

    /// Opens a trace span when the registry carries a tracer.
    fn trace(&self, name: &'static str) -> Option<SpanGuard> {
        self.tracer.as_ref().map(|t| t.span(name))
    }
}

/// Configuration of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// The rate law.
    pub law: RateLaw,
    /// Sector synchronisation interval, s (paper: 2×10⁻⁸).
    pub t_stop: f64,
    /// Total simulated time, s.
    pub total_time: f64,
    /// RNG seed (each rank derives its own stream).
    pub seed: u64,
}

impl ParallelConfig {
    /// The paper's scalability-test setup: 573 K, `t_stop = 2×10⁻⁸ s`.
    pub fn paper_scaling(total_time: f64, seed: u64) -> Self {
        ParallelConfig {
            law: RateLaw::at_temperature(573.0),
            t_stop: 2e-8,
            total_time,
            seed,
        }
    }
}

/// Aggregate statistics of a parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelStats {
    /// Full sector cycles executed.
    pub cycles: u64,
    /// Simulated time reached, s.
    pub time: f64,
    /// Executed hops per rank.
    pub rank_events: Vec<u64>,
    /// Total halo bytes exchanged.
    pub halo_bytes: u64,
    /// Total remote-modification entries exchanged.
    pub remote_mods: u64,
}

impl ParallelStats {
    /// Total hops across ranks.
    pub fn total_events(&self) -> u64 {
        self.rank_events.iter().sum()
    }
}

/// What one rank hands back after a clean run (the worker-process side of
/// the final gather).
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutput {
    /// The rank that produced this.
    pub rank: usize,
    /// Interior species in local slot order.
    pub interior: Vec<Species>,
    /// Executed hops (cumulative across resumes).
    pub events: u64,
    /// Halo bytes sent (cumulative across resumes).
    pub halo_bytes: u64,
    /// Remote-modification entries sent (cumulative across resumes).
    pub remote_mods: u64,
}

/// Extra knobs of [`run_sublattice_full`] beyond [`ParallelConfig`]:
/// telemetry, checkpointing, resume, and failure-detection timeout.
pub struct RunOptions<'a> {
    /// Telemetry registry (see [`run_sublattice_ranked`]).
    pub registry: Option<&'a Registry>,
    /// Write cycle-boundary checkpoints (and the final state) here.
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint every this many cycles (0 = final state only).
    pub checkpoint_every_cycles: u64,
    /// Resume from this checkpoint (its lattice replaces `initial`).
    pub resume: Option<&'a ParallelCheckpoint>,
    /// How long a rank waits on a silent peer before declaring it lost.
    pub recv_timeout: Duration,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions {
            registry: None,
            checkpoint_path: None,
            checkpoint_every_cycles: 0,
            resume: None,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }
}

/// Pre-computed halo-exchange plan: for each (owner, requester) pair, the
/// owner-side interior slots to read and the requester-side ghost slots to
/// write, in matching order.
struct HaloPlan {
    /// `sends[owner][requester]` = owner interior slots.
    sends: Vec<Vec<(usize, Vec<u32>)>>,
    /// `recvs[requester][owner]` = requester ghost slots.
    recvs: Vec<Vec<(usize, Vec<u32>)>>,
    /// Self-wrapping ghosts: `(interior slot, ghost slot)` per rank.
    self_copies: Vec<Vec<(u32, u32)>>,
}

fn build_halo_plan(decomp: &Decomposition) -> HaloPlan {
    let n = decomp.n_ranks();
    let indexers: Vec<_> = (0..n).map(|r| decomp.indexer(r)).collect();
    let mut sends: Vec<Vec<(usize, Vec<u32>)>> = vec![Vec::new(); n];
    let mut recvs: Vec<Vec<(usize, Vec<u32>)>> = vec![Vec::new(); n];
    let mut self_copies: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for req in 0..n {
        // Group this rank's ghost sites by owner, deterministically.
        let mut by_owner: Vec<(usize, Vec<u32>, Vec<u32>)> = Vec::new();
        for (local, wrapped) in decomp.ghost_sites(req) {
            let owner = decomp.owner_of(wrapped);
            let oslot = indexers[owner].slot(wrapped).expect("owner interior") as u32;
            let gslot = indexers[req].slot(local).expect("requester ghost") as u32;
            if owner == req {
                self_copies[req].push((oslot, gslot));
                continue;
            }
            match by_owner.iter_mut().find(|e| e.0 == owner) {
                Some(e) => {
                    e.1.push(oslot);
                    e.2.push(gslot);
                }
                None => by_owner.push((owner, vec![oslot], vec![gslot])),
            }
        }
        by_owner.sort_by_key(|e| e.0);
        for (owner, oslots, gslots) in by_owner {
            sends[owner].push((req, oslots));
            recvs[req].push((owner, gslots));
        }
    }
    for s in &mut sends {
        s.sort_by_key(|e| e.0);
    }
    HaloPlan {
        sends,
        recvs,
        self_copies,
    }
}

/// Per-rank worker state.
struct Worker<'a, E> {
    rank: usize,
    decomp: &'a Decomposition,
    geom: &'a RegionGeometry,
    evaluator: E,
    indexer: tensorkmc_lattice::LocalIndexer,
    /// Species, interior slots first then ghosts (the Eq. 4 layout).
    storage: Vec<Species>,
    /// Interior coordinate of each interior slot.
    coord_of_slot: Vec<HalfVec>,
    rng: StdRng,
    events: u64,
    footprint_n2: i64,
}

impl<'a, E: VacancyEnergyEvaluator> Worker<'a, E> {
    fn new(
        rank: usize,
        decomp: &'a Decomposition,
        geom: &'a RegionGeometry,
        evaluator: E,
        global: &SiteArray,
        seed: u64,
    ) -> Self {
        let indexer = decomp.indexer(rank);
        let n_total = indexer.n_local() + indexer.n_ghost();
        let mut storage = vec![Species::Fe; n_total];
        let mut coord_of_slot = vec![HalfVec::ZERO; indexer.n_local()];
        let (lo, hi) = decomp.block(rank);
        let g = decomp.ghost();
        for x in lo.x - g..hi.x + g {
            for y in lo.y - g..hi.y + g {
                for z in lo.z - g..hi.z + g {
                    let p = HalfVec::new(x, y, z);
                    if !p.is_bcc_site() {
                        continue;
                    }
                    let slot = indexer.slot(p).expect("in extended block");
                    storage[slot] = global.at(p); // at() wraps periodically
                    if slot < indexer.n_local() {
                        coord_of_slot[slot] = p;
                    }
                }
            }
        }
        let footprint_n2 = geom.sites.iter().map(|s| s.norm2()).max().unwrap_or(0);
        Worker {
            rank,
            decomp,
            geom,
            evaluator,
            indexer,
            storage,
            coord_of_slot,
            rng: StdRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            events: 0,
            footprint_n2,
        }
    }

    /// Runs one sector interval; returns the halo sites modified, as
    /// `(wrapped coord, new species)`.
    fn run_sector(
        &mut self,
        sector: usize,
        law: &RateLaw,
        t_stop: f64,
        telemetry: Option<&SectorTelemetry>,
    ) -> Result<Vec<(HalfVec, Species)>, ParallelError> {
        let _sector_trace = telemetry.and_then(|t| t.trace(keys::PAR_SECTOR));
        let _sector_span = telemetry.map(|t| t.sector.scoped());
        let events_before = self.events;
        let (olo, ohi) = self.decomp.octant(self.rank, sector);
        let in_octant = |p: HalfVec| {
            p.x >= olo.x
                && p.x < ohi.x
                && p.y >= olo.y
                && p.y < ohi.y
                && p.z >= olo.z
                && p.z < ohi.z
        };

        // Vacancies currently inside the active octant.
        let mut systems: Vec<VacancySystem> = (0..self.indexer.n_local())
            .filter(|&s| self.storage[s] == Species::Vacancy)
            .map(|s| self.coord_of_slot[s])
            .filter(|&p| in_octant(p))
            .map(VacancySystem::new)
            .collect();
        let mut eligible: Vec<bool> = vec![true; systems.len()];
        let mut tree = SumTree::new(systems.len());
        let mut ghost_mods: Vec<(HalfVec, Species)> = Vec::new();

        let mut t_local = 0.0;
        loop {
            // Refresh stale systems of still-eligible vacancies.
            for i in 0..systems.len() {
                if eligible[i] && !systems[i].valid {
                    let storage = &self.storage;
                    let indexer = &self.indexer;
                    systems[i].refresh_with(
                        |p| storage[indexer.slot(p).expect("halo covers footprint")],
                        self.geom,
                        &self.evaluator,
                        law,
                    )?;
                    tree.set(i, systems[i].total_rate);
                }
            }
            let total = tree.total();
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe
            if !(total > 0.0) {
                break;
            }
            let r: f64 = self.rng.f64_open0();
            let dt = law.residence_time(total, r);
            if t_local + dt > t_stop {
                // Interval exhausted (Shim–Amar: the event is discarded).
                if let Some(t) = telemetry {
                    t.boundary_rejections.inc();
                }
                break;
            }
            t_local += dt;

            let u: f64 = self.rng.f64() * total;
            let (vi, residual) = tree.sample(u);
            let k = systems[vi].pick_direction(residual);
            let from = systems[vi].center;
            let to = from + HalfVec::FIRST_NN[k];
            let sfrom = self.indexer.slot(from).expect("interior");
            let sto = self.indexer.slot(to).expect("halo covers 1NN");
            let moved = self.storage[sto];
            debug_assert!(moved.is_atom());
            self.storage.swap(sfrom, sto);
            self.events += 1;

            // Track halo writes for the owners.
            let pbox = self.decomp.pbox();
            if sfrom >= self.indexer.n_local() {
                ghost_mods.push((pbox.wrap(from), self.storage[sfrom]));
            }
            if sto >= self.indexer.n_local() {
                ghost_mods.push((pbox.wrap(to), self.storage[sto]));
            }

            // Update the moved vacancy.
            systems[vi].center = to;
            systems[vi].valid = false;
            if !in_octant(to) {
                eligible[vi] = false;
                tree.set(vi, 0.0);
                if let Some(t) = telemetry {
                    t.octant_exits.inc();
                }
            }
            // Invalidate eligible systems whose VET covers a changed site.
            for (i, sys) in systems.iter_mut().enumerate() {
                if !eligible[i] || !sys.valid {
                    continue;
                }
                for p in [from, to] {
                    let d = p - sys.center; // same unwrapped frame
                    if d.norm2() <= self.footprint_n2 {
                        sys.valid = false;
                        break;
                    }
                }
            }
        }
        if let Some(t) = telemetry {
            t.sector_events.add(self.events - events_before);
        }
        Ok(ghost_mods)
    }

    /// This rank's cycle-boundary state for the checkpoint/gather machinery.
    fn state(&self, cycle: u64, is_final: bool, halo_bytes: u64, remote_mods: u64) -> RankState {
        let (rng_state, rng_inc) = self.rng.to_parts();
        RankState {
            rank: self.rank,
            cycle,
            is_final,
            events: self.events,
            halo_bytes,
            remote_mods,
            rng_state,
            rng_inc,
            interior: self.storage[..self.indexer.n_local()]
                .iter()
                .map(|&s| s as u8)
                .collect(),
        }
    }
}

/// Runs the synchronous sublattice algorithm to `config.total_time`,
/// returning the final global configuration and run statistics.
///
/// `make_eval` builds each rank's energy evaluator (evaluators are not
/// required to be `Clone` — e.g. each holds its own simulated core group).
pub fn run_sublattice<E, F>(
    initial: &SiteArray,
    geom: Arc<RegionGeometry>,
    decomp: &Decomposition,
    make_eval: F,
    config: &ParallelConfig,
) -> Result<(SiteArray, ParallelStats), ParallelError>
where
    E: VacancyEnergyEvaluator,
    F: Fn(usize) -> E + Sync,
{
    run_sublattice_telemetry(initial, geom, decomp, make_eval, config, None)
}

/// [`run_sublattice`] with optional telemetry: when `registry` is given, the
/// run records per-sector compute (`parallel.sector`) and synchronisation
/// (`parallel.sync`) spans plus event/rejection/traffic counters into it.
/// Per-rank snapshots are merged and discarded; use
/// [`run_sublattice_ranked`] to keep them.
pub fn run_sublattice_telemetry<E, F>(
    initial: &SiteArray,
    geom: Arc<RegionGeometry>,
    decomp: &Decomposition,
    make_eval: F,
    config: &ParallelConfig,
    registry: Option<&Registry>,
) -> Result<(SiteArray, ParallelStats), ParallelError>
where
    E: VacancyEnergyEvaluator,
    F: Fn(usize) -> E + Sync,
{
    let (out, stats, _) =
        run_sublattice_ranked(initial, geom, decomp, make_eval, config, registry)?;
    Ok((out, stats))
}

/// [`run_sublattice_telemetry`], additionally returning one rank-tagged
/// [`Snapshot`] per rank.
///
/// When `registry` is given, every rank thread owns a child registry
/// ([`Registry::with_rank`]) for the whole run — its sector/sync spans,
/// barrier wait time, and ghost-exchange byte/message counters accumulate
/// rank-locally with no cross-rank contention. After the ranks join, each
/// child is merged into `registry` exactly ([`Registry::merge_from`]) and
/// its snapshot returned. Ranks record deterministic counters, so the
/// returned snapshots' counter sets are reproducible run to run; the same
/// merge machinery works unchanged when ranks become processes and ship
/// snapshots as JSON instead ([`Snapshot::merge`]).
///
/// Without a registry the snapshot list is empty.
pub fn run_sublattice_ranked<E, F>(
    initial: &SiteArray,
    geom: Arc<RegionGeometry>,
    decomp: &Decomposition,
    make_eval: F,
    config: &ParallelConfig,
    registry: Option<&Registry>,
) -> Result<(SiteArray, ParallelStats, Vec<Snapshot>), ParallelError>
where
    E: VacancyEnergyEvaluator,
    F: Fn(usize) -> E + Sync,
{
    run_sublattice_full(
        initial,
        geom,
        decomp,
        make_eval,
        config,
        RunOptions {
            registry,
            ..RunOptions::default()
        },
    )
}

/// The full-featured in-process driver: [`run_sublattice_ranked`] plus
/// checkpointing, resume, and a configurable failure-detection timeout
/// (see [`RunOptions`]).
///
/// When `options.resume` is set, its lattice replaces `initial` and every
/// rank restores its RNG stream and counters from the checkpoint, so the
/// resumed run replays the exact trajectory of an uninterrupted one.
pub fn run_sublattice_full<E, F>(
    initial: &SiteArray,
    geom: Arc<RegionGeometry>,
    decomp: &Decomposition,
    make_eval: F,
    config: &ParallelConfig,
    options: RunOptions<'_>,
) -> Result<(SiteArray, ParallelStats, Vec<Snapshot>), ParallelError>
where
    E: VacancyEnergyEvaluator,
    F: Fn(usize) -> E + Sync,
{
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe validation
    if !(config.t_stop > 0.0) || !(config.total_time > 0.0) {
        return Err(ParallelError::BadTimes {
            t_stop: config.t_stop,
            total: config.total_time,
        });
    }
    if let Some(ck) = options.resume {
        ck.validate_against(decomp, config)?;
    }
    let start_lattice: &SiteArray = options.resume.map(|c| &c.lattice).unwrap_or(initial);
    let n = decomp.n_ranks();
    // One rank-tagged child registry per rank; the parent's tracer (if any)
    // is shared so rank threads land in the same flame chart.
    let children: Option<Vec<Arc<Registry>>> = options.registry.map(|parent| {
        (0..n)
            .map(|r| {
                let child = Registry::with_rank(r as u32);
                if let Some(tracer) = parent.tracer() {
                    child.set_tracer(tracer);
                }
                Arc::new(child)
            })
            .collect()
    });
    let n_cycles = (config.total_time / config.t_stop).ceil() as u64;
    let plan = build_halo_plan(decomp);
    let neighbors: Vec<Vec<usize>> = (0..n).map(|r| decomp.neighbors(r)).collect();
    let mut fabric = build_fabric_with_timeout(&neighbors, options.recv_timeout)?;
    if let Some(path) = &options.checkpoint_path {
        let writer = Arc::new(CheckpointWriter::new(decomp.clone(), *config, path.clone()));
        for comm in fabric.iter_mut() {
            comm.set_collector(Arc::clone(&writer) as _, options.checkpoint_every_cycles);
        }
    }

    type RankResult = Result<RankOutput, ParallelError>;
    let results: Vec<RankResult> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, mut comm) in fabric.into_iter().enumerate() {
            let geom = &geom;
            let plan = &plan;
            let make_eval = &make_eval;
            let resume = options.resume.map(|c| c.rank_resume(rank));
            let telemetry = children.as_ref().map(|c| SectorTelemetry::new(&c[rank]));
            handles.push(scope.spawn(move || {
                rank_main(
                    &mut comm,
                    decomp,
                    geom,
                    make_eval(rank),
                    start_lattice,
                    plan,
                    config,
                    n_cycles,
                    resume,
                    telemetry,
                )
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(result) => result,
                Err(payload) => Err(ParallelError::RankPanicked {
                    rank,
                    message: panic_message(payload.as_ref()),
                }),
            })
            .collect()
    });

    // Cycle boundary for the whole run: snapshot each rank's registry and
    // fold it into the caller's.
    let mut snapshots = Vec::new();
    if let (Some(parent), Some(children)) = (options.registry, &children) {
        for child in children {
            snapshots.push(child.snapshot());
            parent.merge_from(child);
        }
    }

    // Collapse failures to one attributable error before touching outputs.
    let mut outputs: Vec<Option<RankOutput>> = (0..n).map(|_| None).collect();
    let mut errors = Vec::new();
    for res in results {
        match res {
            Ok(o) => {
                let rank = o.rank;
                outputs[rank] = Some(o);
            }
            Err(e) => errors.push(e),
        }
    }
    if !errors.is_empty() {
        return Err(collapse_errors(errors));
    }

    // Assemble the final lattice and the statistics.
    let mut out = SiteArray::pure_iron(*initial.pbox());
    let mut rank_events = vec![0u64; n];
    let mut halo_bytes = 0;
    let mut remote_mods = 0;
    for o in outputs.into_iter().map(Option::unwrap) {
        let coords = interior_coords(decomp, o.rank);
        for (slot, &sp) in o.interior.iter().enumerate() {
            out.set_at(coords[slot], sp);
        }
        rank_events[o.rank] = o.events;
        halo_bytes += o.halo_bytes;
        remote_mods += o.remote_mods;
    }
    Ok((
        out,
        ParallelStats {
            cycles: n_cycles,
            // Ranks clamp the final cycle's interval, so the simulated time
            // is exactly `total_time` (never `n_cycles * t_stop`, which
            // overshoots whenever the division is inexact).
            time: (n_cycles as f64 * config.t_stop).min(config.total_time),
            rank_events,
            halo_bytes,
            remote_mods,
        },
        snapshots,
    ))
}

/// Collapses the per-rank error cascade of a failed run into the one error
/// worth reporting. A root-cause error (panic, KMC failure, malformed
/// frame, …) always wins over the peer-disconnect symptoms it triggered on
/// the neighbours; when only symptoms remain (e.g. a killed process), the
/// most-accused peer is reported as the lost rank, ties to the lowest id.
pub fn collapse_errors(errors: Vec<ParallelError>) -> ParallelError {
    assert!(!errors.is_empty(), "collapse of an empty error set");
    if let Some(primary) = errors.iter().find(|e| !e.is_secondary()) {
        return primary.clone();
    }
    let mut accused: BTreeMap<usize, usize> = BTreeMap::new();
    for e in &errors {
        match e {
            ParallelError::PeerDisconnected { peer, .. } => *accused.entry(*peer).or_insert(0) += 1,
            ParallelError::RankLost { rank } => *accused.entry(*rank).or_insert(0) += 1,
            _ => {}
        }
    }
    if let Some((&rank, _)) = accused
        .iter()
        .max_by_key(|&(r, c)| (*c, std::cmp::Reverse(*r)))
    {
        return ParallelError::RankLost { rank };
    }
    errors.into_iter().next().unwrap()
}

/// Extracts a human-readable message from a rank thread's panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one rank of the sublattice algorithm over an arbitrary
/// [`Transport`] — the entry point a TCP worker process drives, and the
/// body every in-process rank thread runs. The halo plan is derived from
/// the decomposition locally, so a worker needs only the deck-level inputs
/// its peers also have.
#[allow(clippy::too_many_arguments)]
pub fn run_rank<T: Transport, E: VacancyEnergyEvaluator>(
    comm: &mut T,
    decomp: &Decomposition,
    geom: &RegionGeometry,
    evaluator: E,
    initial: &SiteArray,
    config: &ParallelConfig,
    resume: Option<RankResume>,
    registry: Option<&Registry>,
) -> Result<RankOutput, ParallelError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe validation
    if !(config.t_stop > 0.0) || !(config.total_time > 0.0) {
        return Err(ParallelError::BadTimes {
            t_stop: config.t_stop,
            total: config.total_time,
        });
    }
    let n_cycles = (config.total_time / config.t_stop).ceil() as u64;
    let plan = build_halo_plan(decomp);
    let telemetry = registry.map(SectorTelemetry::new);
    rank_main(
        comm, decomp, geom, evaluator, initial, &plan, config, n_cycles, resume, telemetry,
    )
}

fn bad_frame(rank: usize, peer: usize, detail: String) -> ParallelError {
    ParallelError::BadFrame { rank, peer, detail }
}

/// The body of one rank's run, generic over the transport.
#[allow(clippy::too_many_arguments)]
fn rank_main<T: Transport, E: VacancyEnergyEvaluator>(
    comm: &mut T,
    decomp: &Decomposition,
    geom: &RegionGeometry,
    evaluator: E,
    initial: &SiteArray,
    plan: &HaloPlan,
    config: &ParallelConfig,
    n_cycles: u64,
    resume: Option<RankResume>,
    telemetry: Option<SectorTelemetry>,
) -> Result<RankOutput, ParallelError> {
    let rank = comm.rank();
    let mut w = Worker::new(rank, decomp, geom, evaluator, initial, config.seed);
    let (start_cycle, base_halo, base_mods) = match resume {
        Some(r) => {
            w.rng = StdRng::from_parts(r.rng_state, r.rng_inc);
            w.events = r.events;
            (r.start_cycle.min(n_cycles), r.halo_bytes, r.remote_mods)
        }
        None => (0, 0, 0),
    };
    let peers = comm.peers();
    let mut halo_bytes = base_halo;
    let mut remote_mods = base_mods;
    let mut ghost_msgs = 0u64;
    if let Some(tracer) = telemetry.as_ref().and_then(|t| t.tracer.as_ref()) {
        tracer.set_thread_label(format!("rank {rank}"));
    }

    for cycle in start_cycle..n_cycles {
        // The last cycle of a non-divisible `total_time / t_stop` is
        // clamped so every rank stops exactly at `total_time` instead of
        // overshooting to `n_cycles * t_stop`. Computed (not accumulated)
        // identically on every rank, so the clamp cannot desynchronise.
        let remaining = config.total_time - cycle as f64 * config.t_stop;
        let t_stop = config.t_stop.min(remaining);
        for sector in 0..8 {
            let mods = w.run_sector(sector, &config.law, t_stop, telemetry.as_ref())?;
            let sync_trace = telemetry.as_ref().and_then(|t| t.trace(keys::PAR_SYNC));
            let sync_span = telemetry.as_ref().map(|t| t.sync.scoped());

            // Phase 1: push remote modifications to their owners.
            let mut per_owner: Vec<Vec<(u32, u8)>> = vec![Vec::new(); peers.len()];
            for (wrapped, sp) in mods {
                let owner = decomp.owner_of(wrapped);
                if owner == rank {
                    // Periodic self-wrap: apply directly to our interior.
                    let slot = w.indexer.slot(wrapped).expect("own interior");
                    w.storage[slot] = sp;
                    continue;
                }
                let oslot = decomp.indexer(owner).slot(wrapped).expect("owner interior") as u32;
                let pi = peers.iter().position(|&p| p == owner).expect("neighbour");
                per_owner[pi].push((oslot, sp as u8));
            }
            for (pi, &peer) in peers.iter().enumerate() {
                remote_mods += per_owner[pi].len() as u64;
                ghost_msgs += 1;
                comm.send(peer, Msg::Mods(std::mem::take(&mut per_owner[pi])))?;
            }
            for &peer in &peers {
                match comm.recv(peer)? {
                    Msg::Mods(entries) => {
                        for (slot, b) in entries {
                            let sp = Species::from_u8(b).ok_or_else(|| {
                                bad_frame(rank, peer, format!("invalid species byte {b}"))
                            })?;
                            let slot = slot as usize;
                            if slot >= w.indexer.n_local() {
                                return Err(bad_frame(
                                    rank,
                                    peer,
                                    format!(
                                        "mods slot {slot} out of range ({} interior sites)",
                                        w.indexer.n_local()
                                    ),
                                ));
                            }
                            w.storage[slot] = sp;
                        }
                    }
                    Msg::Halo(_) => {
                        return Err(bad_frame(
                            rank,
                            peer,
                            "halo frame during the mods phase".to_string(),
                        ))
                    }
                }
            }
            {
                let _wait = telemetry.as_ref().map(|t| t.barrier_wait.scoped());
                comm.barrier()?;
            }

            // Phase 2: halo refresh from owners.
            for (req, oslots) in &plan.sends[rank] {
                let payload: Vec<u8> = oslots
                    .iter()
                    .map(|&s| w.storage[s as usize] as u8)
                    .collect();
                halo_bytes += payload.len() as u64;
                ghost_msgs += 1;
                comm.send(*req, Msg::Halo(payload))?;
            }
            // Self-wrapping ghosts refresh locally.
            for &(oslot, gslot) in &plan.self_copies[rank] {
                w.storage[gslot as usize] = w.storage[oslot as usize];
            }
            for (owner, gslots) in &plan.recvs[rank] {
                match comm.recv(*owner)? {
                    Msg::Halo(payload) => {
                        if payload.len() != gslots.len() {
                            return Err(bad_frame(
                                rank,
                                *owner,
                                format!(
                                    "halo payload of {} bytes, plan expects {}",
                                    payload.len(),
                                    gslots.len()
                                ),
                            ));
                        }
                        for (&g, &b) in gslots.iter().zip(&payload) {
                            let sp = Species::from_u8(b).ok_or_else(|| {
                                bad_frame(rank, *owner, format!("invalid species byte {b}"))
                            })?;
                            w.storage[g as usize] = sp;
                        }
                    }
                    Msg::Mods(_) => {
                        return Err(bad_frame(
                            rank,
                            *owner,
                            "mods frame during the halo phase".to_string(),
                        ))
                    }
                }
            }
            {
                let _wait = telemetry.as_ref().map(|t| t.barrier_wait.scoped());
                comm.barrier()?;
            }
            drop(sync_span);
            drop(sync_trace);
        }

        // Cycle boundary: everything after the final barrier above is
        // consistent across ranks, so this is the checkpoint/gather point.
        let done = cycle + 1;
        let is_final = done == n_cycles;
        if comm.wants_state(done, is_final) {
            comm.submit_state(w.state(done, is_final, halo_bytes, remote_mods))?;
        }
    }
    if start_cycle >= n_cycles && comm.wants_state(n_cycles, true) {
        // Resuming a finished run: still satisfy the final gather.
        comm.submit_state(w.state(n_cycles, true, halo_bytes, remote_mods))?;
    }

    if let Some(t) = &telemetry {
        // Telemetry records this session's traffic only (a resumed run's
        // carried-over counters belong to the session that produced them).
        t.halo_bytes.add(halo_bytes - base_halo);
        t.remote_mods.add(remote_mods - base_mods);
        t.ghost_msgs.add(ghost_msgs);
        // A worker thread's buffered spans drain when the thread-local
        // state drops, but flush explicitly so nothing depends on TLS
        // destructor order.
        if let Some(tracer) = &t.tracer {
            tracer.flush_thread();
        }
    }
    comm.finish()?;
    let interior = w.storage[..w.indexer.n_local()].to_vec();
    Ok(RankOutput {
        rank,
        interior,
        events: w.events,
        halo_bytes,
        remote_mods,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{Coordinator, CoordinatorOptions, TcpTransport, WorkerConfig};
    use tensorkmc_compat::rng::StdRng;
    use tensorkmc_lattice::{AlloyComposition, PeriodicBox};
    use tensorkmc_nnp::{ModelConfig, NnpModel};
    use tensorkmc_operators::{NnpDirectEvaluator, OperatorError, StateEnergies};

    use tensorkmc_potential::FeatureSet;

    fn model() -> NnpModel {
        let fs = FeatureSet::small(4);
        let cfg = ModelConfig {
            channels: vec![fs.n_features(), 16, 1],
            rcut: 3.0,
        };
        let mut m = NnpModel::new(fs, &cfg, &mut StdRng::seed_from_u64(21));
        m.norm.mean = vec![7.0, 7.0, 7.0, 7.0, 0.5, 0.5, 0.5, 0.5];
        m.norm.std = vec![2.0; 8];
        m.energy_scale = 0.2;
        m
    }

    fn setup(cells: i32, seed: u64) -> (SiteArray, Arc<RegionGeometry>, NnpModel) {
        let geom = Arc::new(RegionGeometry::new(2.87, 3.0).unwrap());
        let pbox = PeriodicBox::new(cells, cells, cells, 2.87).unwrap();
        let comp = AlloyComposition {
            cu_fraction: 0.03,
            vacancy_fraction: 0.002,
        };
        let lattice =
            SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(seed)).unwrap();
        (lattice, geom, model())
    }

    fn run(
        lattice: &SiteArray,
        geom: &Arc<RegionGeometry>,
        m: &NnpModel,
        grid: (usize, usize, usize),
        total_time: f64,
    ) -> (SiteArray, ParallelStats) {
        let decomp = Decomposition::new(*lattice.pbox(), grid, geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time,
            seed: 99,
        };
        run_sublattice(
            lattice,
            Arc::clone(geom),
            &decomp,
            |_rank| NnpDirectEvaluator::new(m, Arc::clone(geom)),
            &cfg,
        )
        .unwrap()
    }

    /// Runs the same deck over loopback TCP: a coordinator thread plus one
    /// worker thread per rank, the process-topology test double.
    fn run_tcp(
        lattice: &SiteArray,
        geom: &Arc<RegionGeometry>,
        m: &NnpModel,
        grid: (usize, usize, usize),
        total_time: f64,
        checkpoint_path: Option<PathBuf>,
        checkpoint_every: u64,
    ) -> Result<(SiteArray, ParallelStats), ParallelError> {
        let decomp = Decomposition::new(*lattice.pbox(), grid, geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time,
            seed: 99,
        };
        let n = decomp.n_ranks();
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(30);
        std::thread::scope(|scope| {
            let coord_handle = {
                let decomp = decomp.clone();
                let opts = CoordinatorOptions {
                    checkpoint_path,
                    recv_timeout: timeout,
                    registry: None,
                };
                scope.spawn(move || coordinator.run(&decomp, &cfg, &opts))
            };
            let mut workers = Vec::new();
            for rank in 0..n {
                let addr = addr.clone();
                let decomp = decomp.clone();
                let geom = Arc::clone(geom);
                workers.push(scope.spawn(move || {
                    let neighbors = decomp.neighbors(rank);
                    let mut t = TcpTransport::connect(&WorkerConfig {
                        coordinator: &addr,
                        rank,
                        ranks: n,
                        neighbors: &neighbors,
                        recv_timeout: timeout,
                        checkpoint_every,
                        registry: None,
                    })?;
                    let evaluator = NnpDirectEvaluator::new(m, Arc::clone(&geom));
                    let res =
                        run_rank(&mut t, &decomp, &geom, evaluator, lattice, &cfg, None, None);
                    if let Err(e) = &res {
                        t.report_failure(e);
                    }
                    res
                }));
            }
            for h in workers {
                // Worker errors are fine here — the coordinator's verdict is
                // the outcome under test.
                let _ = h.join();
            }
            coord_handle.join().unwrap().map(|o| (o.lattice, o.stats))
        })
    }

    #[test]
    fn single_rank_conserves_species_and_executes_events() {
        let (lattice, geom, m) = setup(10, 1);
        let before = lattice.census();
        let (out, stats) = run(&lattice, &geom, &m, (1, 1, 1), 4e-7);
        assert_eq!(out.census(), before, "species conserved");
        assert!(stats.total_events() > 0, "events executed");
        assert!((stats.time - 4e-7).abs() < 1e-12);
        assert_eq!(stats.cycles, 20);
    }

    #[test]
    fn two_ranks_conserve_species() {
        let (lattice, geom, m) = setup(20, 2);
        let before = lattice.census();
        let (out, stats) = run(&lattice, &geom, &m, (2, 1, 1), 2e-7);
        assert_eq!(out.census(), before);
        assert!(stats.total_events() > 0);
        assert_eq!(stats.rank_events.len(), 2);
        assert!(stats.halo_bytes > 0, "halos exchanged");
    }

    #[test]
    fn eight_ranks_run_and_conserve() {
        let (lattice, geom, m) = setup(20, 3);
        let before = lattice.census();
        let (out, stats) = run(&lattice, &geom, &m, (2, 2, 2), 1e-7);
        assert_eq!(out.census(), before);
        assert!(stats.total_events() > 0);
    }

    #[test]
    fn parallel_run_is_deterministic() {
        let (lattice, geom, m) = setup(20, 4);
        let (a, sa) = run(&lattice, &geom, &m, (2, 1, 1), 1e-7);
        let (b, sb) = run(&lattice, &geom, &m, (2, 1, 1), 1e-7);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(sa, sb);
    }

    #[test]
    fn tcp_transport_matches_channels_at_two_ranks() {
        // The tentpole's parity pin: the same deck over loopback TCP
        // produces the bit-identical trajectory of the in-process backend.
        let (lattice, geom, m) = setup(20, 2);
        let (via_channels, stats_ch) = run(&lattice, &geom, &m, (2, 1, 1), 1e-7);
        let (via_tcp, stats_tcp) = run_tcp(&lattice, &geom, &m, (2, 1, 1), 1e-7, None, 0).unwrap();
        assert_eq!(via_tcp.as_slice(), via_channels.as_slice());
        assert_eq!(stats_tcp, stats_ch);
    }

    #[test]
    fn tcp_transport_matches_channels_at_eight_ranks() {
        let (lattice, geom, m) = setup(20, 3);
        let (via_channels, stats_ch) = run(&lattice, &geom, &m, (2, 2, 2), 1e-7);
        let (via_tcp, stats_tcp) = run_tcp(&lattice, &geom, &m, (2, 2, 2), 1e-7, None, 0).unwrap();
        assert_eq!(via_tcp.as_slice(), via_channels.as_slice());
        assert_eq!(stats_tcp, stats_ch);
    }

    #[test]
    fn checkpoints_are_byte_identical_across_backends() {
        let (lattice, geom, m) = setup(20, 6);
        let dir = std::env::temp_dir().join(format!("tkmc-parity-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck_channels = dir.join("channels.ckpt");
        let ck_tcp = dir.join("tcp.ckpt");

        let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 99,
        };
        run_sublattice_full(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_rank| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &cfg,
            RunOptions {
                checkpoint_path: Some(ck_channels.clone()),
                checkpoint_every_cycles: 2,
                ..RunOptions::default()
            },
        )
        .unwrap();
        run_tcp(
            &lattice,
            &geom,
            &m,
            (2, 1, 1),
            1e-7,
            Some(ck_tcp.clone()),
            2,
        )
        .unwrap();

        let a = std::fs::read(&ck_channels).unwrap();
        let b = std::fs::read(&ck_tcp).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "checkpoint bytes differ between backends");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_replays_the_uninterrupted_trajectory() {
        // Run A: 10 cycles straight through. Run B: 5 cycles, checkpoint,
        // then resume for the remaining 5. Identical final state and stats.
        let (lattice, geom, m) = setup(20, 5);
        let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
        let full = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 2e-7,
            seed: 99,
        };
        let (straight, straight_stats) = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_rank| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &full,
        )
        .unwrap();

        let dir = std::env::temp_dir().join(format!("tkmc-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("half.ckpt");
        let mut half = full;
        half.total_time = 1e-7;
        run_sublattice_full(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_rank| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &half,
            RunOptions {
                checkpoint_path: Some(path.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let ck = ParallelCheckpoint::load(&path).unwrap();
        assert_eq!(ck.cycle, 5);
        let (resumed, resumed_stats, _) = run_sublattice_full(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_rank| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &full,
            RunOptions {
                resume: Some(&ck),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.as_slice(), straight.as_slice());
        assert_eq!(resumed_stats, straight_stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn different_grids_preserve_composition_not_trajectory() {
        // Decompositions change event interleaving (different RNG streams)
        // but never the conserved quantities.
        let (lattice, geom, m) = setup(20, 5);
        let before = lattice.census();
        let (a, _) = run(&lattice, &geom, &m, (1, 1, 1), 1e-7);
        let (b, _) = run(&lattice, &geom, &m, (2, 1, 1), 1e-7);
        assert_eq!(a.census(), before);
        assert_eq!(b.census(), before);
    }

    #[test]
    fn telemetry_mirrors_run_statistics() {
        let (lattice, geom, m) = setup(20, 7);
        let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 99,
        };
        let registry = Registry::new();
        let (_, stats) = run_sublattice_telemetry(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_rank| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &cfg,
            Some(&registry),
        )
        .unwrap();
        let snap = registry.snapshot();
        // One sector span per (rank, cycle, sector); one sync span each.
        let spans = 2 * stats.cycles * 8;
        assert_eq!(snap.timer(keys::PAR_SECTOR).unwrap().count, spans);
        assert_eq!(snap.timer(keys::PAR_SYNC).unwrap().count, spans);
        assert_eq!(
            snap.counter(keys::PAR_SECTOR_EVENTS),
            Some(stats.total_events())
        );
        assert_eq!(snap.counter(keys::PAR_HALO_BYTES), Some(stats.halo_bytes));
        assert_eq!(snap.counter(keys::PAR_REMOTE_MODS), Some(stats.remote_mods));
        assert!(snap.counter(keys::PAR_BOUNDARY_REJECTIONS).unwrap() > 0);
    }

    #[test]
    fn per_rank_snapshots_merge_deterministically() {
        let (lattice, geom, m) = setup(20, 11);
        let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 99,
        };
        let go = || {
            let registry = Registry::new();
            let (_, stats, snaps) = run_sublattice_ranked(
                &lattice,
                Arc::clone(&geom),
                &decomp,
                |_rank| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
                &cfg,
                Some(&registry),
            )
            .unwrap();
            (registry.snapshot(), stats, snaps)
        };
        let (parent, stats, snaps) = go();

        // One rank-tagged snapshot per rank, tags 0..n in order.
        assert_eq!(snaps.len(), 2);
        for (r, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.rank, Some(r as u32));
            assert_eq!(
                snap.counter(keys::PAR_SECTOR_EVENTS),
                Some(stats.rank_events[r]),
                "rank {r} events attributed to its own registry"
            );
            assert_eq!(
                snap.timer(keys::PAR_SECTOR).unwrap().count,
                stats.cycles * 8
            );
        }
        // The parent got the exact fold of the children.
        for key in [
            keys::PAR_SECTOR_EVENTS,
            keys::PAR_HALO_BYTES,
            keys::PAR_GHOST_MSGS,
            keys::PAR_REMOTE_MODS,
            keys::PAR_BOUNDARY_REJECTIONS,
        ] {
            let sum: u64 = snaps.iter().filter_map(|s| s.counter(key)).sum();
            assert_eq!(parent.counter(key), Some(sum), "{key}");
        }
        assert!(parent.counter(keys::PAR_GHOST_MSGS).unwrap() > 0);
        assert!(parent.timer(keys::PAR_BARRIER_WAIT).unwrap().count > 0);
        // Post-hoc snapshot-level merge agrees on every exact quantity —
        // the process-boundary path.
        let merged = Snapshot::merge(&snaps);
        assert_eq!(
            merged.counter(keys::PAR_HALO_BYTES),
            parent.counter(keys::PAR_HALO_BYTES)
        );
        assert_eq!(
            merged.timer(keys::PAR_SECTOR).unwrap().count,
            parent.timer(keys::PAR_SECTOR).unwrap().count
        );
        assert_eq!(
            merged.timer(keys::PAR_SECTOR).unwrap().total_ns,
            parent.timer(keys::PAR_SECTOR).unwrap().total_ns
        );
        // Deterministic: a second identical run produces identical counter
        // sets per rank (timing differs; counters must not).
        let (_, _, snaps2) = go();
        for (a, b) in snaps.iter().zip(&snaps2) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.counters, b.counters);
        }
    }

    #[test]
    fn non_divisible_total_time_is_not_overshot() {
        // total_time 1e-7 over t_stop 3e-8 is 3.33 cycles: the run must
        // execute 4 cycles but report exactly 1e-7 s, not 1.2e-7 s.
        let (lattice, geom, m) = setup(10, 8);
        let decomp = Decomposition::new(*lattice.pbox(), (1, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 3e-8,
            total_time: 1e-7,
            seed: 5,
        };
        let (_, stats) = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_r| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &cfg,
        )
        .unwrap();
        assert_eq!(stats.cycles, 4);
        assert!(
            (stats.time - 1e-7).abs() < 1e-20,
            "reported {} s, want exactly total_time 1e-7 s",
            stats.time
        );
    }

    /// An evaluator that panics on first use — the injected fault for the
    /// rank-panic surfacing test.
    struct PanickingEvaluator(Arc<RegionGeometry>);

    impl VacancyEnergyEvaluator for PanickingEvaluator {
        fn state_energies(&self, _vet: &[Species]) -> Result<StateEnergies, OperatorError> {
            panic!("injected evaluator fault");
        }

        fn geometry(&self) -> &RegionGeometry {
            &self.0
        }
    }

    /// A per-rank fault switch: the designated rank fails (panic or error)
    /// on its first evaluation, the rest run the real evaluator.
    enum FaultyEval {
        Real(Box<NnpDirectEvaluator>),
        Panic(PanickingEvaluator),
        Error(Arc<RegionGeometry>),
    }

    impl VacancyEnergyEvaluator for FaultyEval {
        fn state_energies(&self, vet: &[Species]) -> Result<StateEnergies, OperatorError> {
            match self {
                FaultyEval::Real(e) => e.state_energies(vet),
                FaultyEval::Panic(e) => e.state_energies(vet),
                FaultyEval::Error(_) => Err(OperatorError::VetShape {
                    expected: 0,
                    got: vet.len(),
                }),
            }
        }

        fn geometry(&self) -> &RegionGeometry {
            match self {
                FaultyEval::Real(e) => e.geometry(),
                FaultyEval::Panic(e) => &e.0,
                FaultyEval::Error(g) => g,
            }
        }
    }

    #[test]
    fn rank_panic_is_surfaced_with_rank_identity() {
        let (lattice, geom, _) = setup(10, 9);
        let decomp = Decomposition::new(*lattice.pbox(), (1, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 3,
        };
        let r = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_r| PanickingEvaluator(Arc::clone(&geom)),
            &cfg,
        );
        match r {
            Err(ParallelError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 0);
                assert!(
                    message.contains("injected evaluator fault"),
                    "payload preserved: {message}"
                );
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn dead_rank_is_reported_once_without_cascade() {
        // The satellite bugfix pin: rank 1 of 2 dies mid-cycle; the peer's
        // `PeerDisconnected` symptom must NOT drown the root cause.
        let (lattice, geom, m) = setup(20, 9);
        let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 3,
        };
        let r = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |rank| {
                if rank == 1 {
                    FaultyEval::Panic(PanickingEvaluator(Arc::clone(&geom)))
                } else {
                    FaultyEval::Real(Box::new(NnpDirectEvaluator::new(&m, Arc::clone(&geom))))
                }
            },
            &cfg,
        );
        match r {
            Err(ParallelError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 1, "the dying rank, not the observer");
                assert!(message.contains("injected evaluator fault"));
            }
            other => panic!("expected RankPanicked{{1}}, got {other:?}"),
        }
    }

    #[test]
    fn rank_kmc_error_beats_peer_disconnect_symptoms() {
        let (lattice, geom, m) = setup(20, 10);
        let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 3,
        };
        let r = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |rank| {
                if rank == 0 {
                    FaultyEval::Error(Arc::clone(&geom))
                } else {
                    FaultyEval::Real(Box::new(NnpDirectEvaluator::new(&m, Arc::clone(&geom))))
                }
            },
            &cfg,
        );
        match r {
            Err(ParallelError::Kmc(_)) => {}
            other => panic!("expected the rank-0 Kmc root cause, got {other:?}"),
        }
    }

    #[test]
    fn tcp_worker_failure_is_attributed_by_the_coordinator() {
        // TCP fault injection: rank 1's evaluator fails; its FAILED report
        // must reach the coordinator as one error naming rank 1.
        let (lattice, geom, m) = setup(20, 12);
        let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 3,
        };
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(30);
        let outcome = std::thread::scope(|scope| {
            let coord_handle = {
                let decomp = decomp.clone();
                let opts = CoordinatorOptions {
                    checkpoint_path: None,
                    recv_timeout: timeout,
                    registry: None,
                };
                scope.spawn(move || coordinator.run(&decomp, &cfg, &opts))
            };
            for rank in 0..2 {
                let addr = addr.clone();
                let decomp = decomp.clone();
                let geom = Arc::clone(&geom);
                let m = &m;
                let lattice = &lattice;
                scope.spawn(move || {
                    let neighbors = decomp.neighbors(rank);
                    let mut t = TcpTransport::connect(&WorkerConfig {
                        coordinator: &addr,
                        rank,
                        ranks: 2,
                        neighbors: &neighbors,
                        recv_timeout: timeout,
                        checkpoint_every: 0,
                        registry: None,
                    })
                    .unwrap();
                    let evaluator = if rank == 1 {
                        FaultyEval::Error(Arc::clone(&geom))
                    } else {
                        FaultyEval::Real(Box::new(NnpDirectEvaluator::new(m, Arc::clone(&geom))))
                    };
                    let res =
                        run_rank(&mut t, &decomp, &geom, evaluator, lattice, &cfg, None, None);
                    if let Err(e) = &res {
                        t.report_failure(e);
                    }
                });
            }
            coord_handle.join().unwrap()
        });
        match outcome {
            Err(ParallelError::Transport { rank, detail }) => {
                assert_eq!(rank, 1, "coordinator names the failing rank");
                assert!(detail.contains("rank failed"), "{detail}");
            }
            Ok(_) => panic!("run unexpectedly succeeded"),
            Err(other) => panic!("expected Transport{{rank: 1}}, got {other:?}"),
        }
    }

    #[test]
    fn collapse_prefers_root_cause_and_majority_accusation() {
        // Root cause beats symptoms.
        let e = collapse_errors(vec![
            ParallelError::PeerDisconnected { rank: 0, peer: 2 },
            ParallelError::RankPanicked {
                rank: 2,
                message: "boom".into(),
            },
            ParallelError::PeerDisconnected { rank: 1, peer: 2 },
        ]);
        assert!(matches!(e, ParallelError::RankPanicked { rank: 2, .. }));
        // Symptoms only: the most-accused peer is the lost rank.
        let e = collapse_errors(vec![
            ParallelError::PeerDisconnected { rank: 0, peer: 3 },
            ParallelError::PeerDisconnected { rank: 1, peer: 3 },
            ParallelError::PeerDisconnected { rank: 2, peer: 0 },
        ]);
        assert!(matches!(e, ParallelError::RankLost { rank: 3 }));
        // Tie: lowest rank id.
        let e = collapse_errors(vec![
            ParallelError::PeerDisconnected { rank: 0, peer: 5 },
            ParallelError::PeerDisconnected { rank: 1, peer: 4 },
        ]);
        assert!(matches!(e, ParallelError::RankLost { rank: 4 }));
    }

    #[test]
    fn bad_times_rejected() {
        let (lattice, geom, m) = setup(10, 6);
        let decomp = Decomposition::new(*lattice.pbox(), (1, 1, 1), &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(573.0),
            t_stop: 0.0,
            total_time: 1e-7,
            seed: 1,
        };
        let r = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_r| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &cfg,
        );
        assert!(matches!(r, Err(ParallelError::BadTimes { .. })));
    }
}
