//! Parallel-run checkpointing: cycle-boundary rank states assembled into a
//! resumable global snapshot.
//!
//! At a cycle boundary every ghost site equals its owner's interior value,
//! so the global lattice plus each rank's RNG words and event counters fully
//! determine the remainder of the trajectory. A [`RankState`] is one rank's
//! contribution; a [`ParallelCheckpoint`] is the assembled whole, serialised
//! through the workspace JSON codec so both transport backends (the
//! in-process collector and the TCP coordinator) write *byte-identical*
//! files from identical states. Resume is bit-exact: the restored run
//! replays the same events as the uninterrupted one.

use crate::comm::StateCollector;
use crate::decomp::Decomposition;
use crate::error::ParallelError;
use crate::sublattice::ParallelConfig;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tensorkmc_compat::codec::JsonCodec;
use tensorkmc_compat::impl_json_struct;
use tensorkmc_lattice::{HalfVec, SiteArray, SiteIndexer, Species};

/// Checkpoint format version (bump on any layout change).
pub const CHECKPOINT_VERSION: u64 = 1;

/// One rank's cycle-boundary state, as shipped to the assembling endpoint
/// (the in-process [`CheckpointWriter`] or the TCP coordinator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankState {
    /// The submitting rank.
    pub rank: usize,
    /// Completed cycles at this boundary.
    pub cycle: u64,
    /// Whether this is the end-of-run submission.
    pub is_final: bool,
    /// Executed hops so far.
    pub events: u64,
    /// Halo bytes sent so far.
    pub halo_bytes: u64,
    /// Remote-modification entries sent so far.
    pub remote_mods: u64,
    /// RNG state word ([`tensorkmc_compat::rng::Pcg32::to_parts`]).
    pub rng_state: u64,
    /// RNG increment word.
    pub rng_inc: u64,
    /// Interior species bytes, in local slot order.
    pub interior: Vec<u8>,
}

/// A resumable snapshot of a whole parallel run at a cycle boundary.
#[derive(Debug, Clone)]
pub struct ParallelCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Completed cycles.
    pub cycle: u64,
    /// Sector interval of the run, s.
    pub t_stop: f64,
    /// Total simulated time the run is heading for, s.
    pub total_time: f64,
    /// The run's RNG seed (ranks derive their streams from it).
    pub seed: u64,
    /// Rank grid `[gx, gy, gz]`.
    pub grid: Vec<u64>,
    /// The assembled global lattice at the boundary.
    pub lattice: SiteArray,
    /// Per-rank RNG state words.
    pub rng_state: Vec<u64>,
    /// Per-rank RNG increment words.
    pub rng_inc: Vec<u64>,
    /// Per-rank executed hops.
    pub rank_events: Vec<u64>,
    /// Per-rank halo bytes sent.
    pub halo_bytes: Vec<u64>,
    /// Per-rank remote-modification entries sent.
    pub remote_mods: Vec<u64>,
}

impl_json_struct!(deny_unknown ParallelCheckpoint {
    version,
    cycle,
    t_stop,
    total_time,
    seed,
    grid,
    lattice,
    rng_state,
    rng_inc,
    rank_events,
    halo_bytes,
    remote_mods,
});

/// Interior coordinate of every local slot of rank `r`, in slot order —
/// the map between a rank's interior vector and global lattice sites.
pub(crate) fn interior_coords(decomp: &Decomposition, r: usize) -> Vec<HalfVec> {
    let ix = decomp.indexer(r);
    let (lo, hi) = decomp.block(r);
    let mut coords = vec![HalfVec::ZERO; ix.n_local()];
    for x in lo.x..hi.x {
        for y in lo.y..hi.y {
            for z in lo.z..hi.z {
                let p = HalfVec::new(x, y, z);
                if p.is_bcc_site() {
                    coords[ix.slot(p).expect("interior site")] = p;
                }
            }
        }
    }
    coords
}

impl ParallelCheckpoint {
    /// Assembles the checkpoint from one complete cycle's rank states
    /// (`states[r]` is rank `r`'s submission). Both backends call this, so
    /// identical states produce identical checkpoints.
    pub fn assemble(
        decomp: &Decomposition,
        config: &ParallelConfig,
        cycle: u64,
        states: &[RankState],
    ) -> Result<Self, ParallelError> {
        let n = decomp.n_ranks();
        assert_eq!(states.len(), n, "one state per rank");
        let mut lattice = SiteArray::pure_iron(*decomp.pbox());
        let mut rng_state = vec![0u64; n];
        let mut rng_inc = vec![0u64; n];
        let mut rank_events = vec![0u64; n];
        let mut halo_bytes = vec![0u64; n];
        let mut remote_mods = vec![0u64; n];
        for st in states {
            let coords = interior_coords(decomp, st.rank);
            if st.interior.len() != coords.len() {
                return Err(ParallelError::CheckpointMismatch {
                    detail: format!(
                        "rank {} submitted {} interior sites, decomposition has {}",
                        st.rank,
                        st.interior.len(),
                        coords.len()
                    ),
                });
            }
            for (slot, &b) in st.interior.iter().enumerate() {
                let sp = Species::from_u8(b).ok_or_else(|| ParallelError::CheckpointMismatch {
                    detail: format!("rank {} slot {slot}: invalid species byte {b}", st.rank),
                })?;
                lattice.set_at(coords[slot], sp);
            }
            rng_state[st.rank] = st.rng_state;
            rng_inc[st.rank] = st.rng_inc;
            rank_events[st.rank] = st.events;
            halo_bytes[st.rank] = st.halo_bytes;
            remote_mods[st.rank] = st.remote_mods;
        }
        let grid = decomp.grid();
        Ok(ParallelCheckpoint {
            version: CHECKPOINT_VERSION,
            cycle,
            t_stop: config.t_stop,
            total_time: config.total_time,
            seed: config.seed,
            grid: vec![grid.0 as u64, grid.1 as u64, grid.2 as u64],
            lattice,
            rng_state,
            rng_inc,
            rank_events,
            halo_bytes,
            remote_mods,
        })
    }

    /// Checks the checkpoint matches the run it is resuming: version, rank
    /// grid, box, seed, and `t_stop` must all agree (a mismatch would
    /// silently change the trajectory).
    pub fn validate_against(
        &self,
        decomp: &Decomposition,
        config: &ParallelConfig,
    ) -> Result<(), ParallelError> {
        let mismatch = |detail: String| Err(ParallelError::CheckpointMismatch { detail });
        if self.version != CHECKPOINT_VERSION {
            return mismatch(format!(
                "version {} (this build reads {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        let grid = decomp.grid();
        let want = vec![grid.0 as u64, grid.1 as u64, grid.2 as u64];
        if self.grid != want {
            return mismatch(format!("rank grid {:?}, run uses {:?}", self.grid, want));
        }
        if self.lattice.pbox() != decomp.pbox() {
            return mismatch("periodic box differs from the run's".to_string());
        }
        if self.seed != config.seed {
            return mismatch(format!("seed {} vs run seed {}", self.seed, config.seed));
        }
        if self.t_stop != config.t_stop {
            return mismatch(format!(
                "t_stop {} vs run t_stop {}",
                self.t_stop, config.t_stop
            ));
        }
        let n = decomp.n_ranks();
        for (name, len) in [
            ("rng_state", self.rng_state.len()),
            ("rng_inc", self.rng_inc.len()),
            ("rank_events", self.rank_events.len()),
            ("halo_bytes", self.halo_bytes.len()),
            ("remote_mods", self.remote_mods.len()),
        ] {
            if len != n {
                return mismatch(format!("{name} has {len} entries for {n} ranks"));
            }
        }
        Ok(())
    }

    /// One rank's resume parameters, extracted from the checkpoint.
    pub fn rank_resume(&self, rank: usize) -> RankResume {
        RankResume {
            start_cycle: self.cycle,
            rng_state: self.rng_state[rank],
            rng_inc: self.rng_inc[rank],
            events: self.rank_events[rank],
            halo_bytes: self.halo_bytes[rank],
            remote_mods: self.remote_mods[rank],
        }
    }

    /// The serialised form both backends write — a single code path so the
    /// in-process collector and the TCP coordinator emit identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.to_json_string().into_bytes();
        out.push(b'\n');
        out
    }

    /// Writes the checkpoint durably: temp file in the same directory,
    /// fsync, rename — a crash never leaves a truncated checkpoint.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads a checkpoint from disk.
    pub fn load(path: &Path) -> Result<Self, ParallelError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| ParallelError::CheckpointMismatch {
                detail: format!("cannot read {}: {e}", path.display()),
            })?;
        Self::from_json_str(&text).map_err(|e| ParallelError::CheckpointMismatch {
            detail: format!("cannot parse {}: {e}", path.display()),
        })
    }
}

/// One rank's resume parameters (see [`ParallelCheckpoint::rank_resume`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankResume {
    /// First cycle to execute (cycles `0..start_cycle` are already done).
    pub start_cycle: u64,
    /// RNG state word to restore.
    pub rng_state: u64,
    /// RNG increment word to restore.
    pub rng_inc: u64,
    /// Executed hops carried over.
    pub events: u64,
    /// Halo bytes carried over.
    pub halo_bytes: u64,
    /// Remote-modification entries carried over.
    pub remote_mods: u64,
}

/// The in-process [`StateCollector`]: buffers rank states per cycle and
/// writes the assembled [`ParallelCheckpoint`] once a cycle is complete —
/// the channel-backend counterpart of the TCP coordinator's STATE handling.
pub struct CheckpointWriter {
    decomp: Decomposition,
    config: ParallelConfig,
    path: PathBuf,
    pending: Mutex<HashMap<u64, Vec<Option<RankState>>>>,
}

impl CheckpointWriter {
    /// A writer that persists each completed cycle's checkpoint to `path`
    /// (overwriting — the file always holds the *latest* boundary).
    pub fn new(decomp: Decomposition, config: ParallelConfig, path: PathBuf) -> Self {
        CheckpointWriter {
            decomp,
            config,
            path,
            pending: Mutex::new(HashMap::new()),
        }
    }
}

impl StateCollector for CheckpointWriter {
    fn submit(&self, state: RankState) -> Result<(), ParallelError> {
        let n = self.decomp.n_ranks();
        let cycle = state.cycle;
        let complete = {
            let mut pending = self.pending.lock().unwrap();
            let slots = pending.entry(cycle).or_insert_with(|| vec![None; n]);
            let rank = state.rank;
            slots[rank] = Some(state);
            if slots.iter().all(Option::is_some) {
                pending.remove(&cycle)
            } else {
                None
            }
        };
        if let Some(slots) = complete {
            let states: Vec<RankState> = slots.into_iter().map(Option::unwrap).collect();
            let ck = ParallelCheckpoint::assemble(&self.decomp, &self.config, cycle, &states)?;
            ck.write(&self.path).map_err(|e| ParallelError::Transport {
                rank: states.len(),
                detail: format!("cannot write checkpoint {}: {e}", self.path.display()),
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorkmc_compat::rng::StdRng;
    use tensorkmc_core::RateLaw;
    use tensorkmc_lattice::{AlloyComposition, PeriodicBox, RegionGeometry};

    fn setup() -> (Decomposition, ParallelConfig, SiteArray) {
        let geom = RegionGeometry::new(2.87, 3.0).unwrap();
        let pbox = PeriodicBox::new(20, 20, 20, 2.87).unwrap();
        let decomp = Decomposition::new(pbox, (2, 1, 1), &geom).unwrap();
        let comp = AlloyComposition {
            cu_fraction: 0.03,
            vacancy_fraction: 0.002,
        };
        let lattice = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(5)).unwrap();
        let config = ParallelConfig {
            law: RateLaw::at_temperature(800.0),
            t_stop: 2e-8,
            total_time: 1e-7,
            seed: 42,
        };
        (decomp, config, lattice)
    }

    fn states_from(decomp: &Decomposition, lattice: &SiteArray, cycle: u64) -> Vec<RankState> {
        (0..decomp.n_ranks())
            .map(|r| {
                let coords = interior_coords(decomp, r);
                RankState {
                    rank: r,
                    cycle,
                    is_final: false,
                    events: 10 + r as u64,
                    halo_bytes: 100 + r as u64,
                    remote_mods: 3 + r as u64,
                    rng_state: 0xDEAD + r as u64,
                    rng_inc: 0xBEEF + r as u64,
                    interior: coords.iter().map(|&p| lattice.at(p) as u8).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn assemble_reconstructs_the_global_lattice() {
        let (decomp, config, lattice) = setup();
        let states = states_from(&decomp, &lattice, 3);
        let ck = ParallelCheckpoint::assemble(&decomp, &config, 3, &states).unwrap();
        assert_eq!(ck.lattice.as_slice(), lattice.as_slice());
        assert_eq!(ck.rank_events, vec![10, 11]);
        assert_eq!(ck.rng_state, vec![0xDEAD, 0xDEAE]);
        ck.validate_against(&decomp, &config).unwrap();
    }

    #[test]
    fn json_round_trip_is_exact() {
        let (decomp, config, lattice) = setup();
        let states = states_from(&decomp, &lattice, 7);
        let ck = ParallelCheckpoint::assemble(&decomp, &config, 7, &states).unwrap();
        let bytes = ck.to_bytes();
        let back = ParallelCheckpoint::from_json_str(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(back.to_bytes(), bytes, "serialisation is stable");
    }

    #[test]
    fn validation_rejects_mismatched_runs() {
        let (decomp, config, lattice) = setup();
        let states = states_from(&decomp, &lattice, 1);
        let ck = ParallelCheckpoint::assemble(&decomp, &config, 1, &states).unwrap();
        let mut other = config;
        other.seed = 43;
        assert!(matches!(
            ck.validate_against(&decomp, &other),
            Err(ParallelError::CheckpointMismatch { .. })
        ));
        other = config;
        other.t_stop = 1e-8;
        assert!(matches!(
            ck.validate_against(&decomp, &other),
            Err(ParallelError::CheckpointMismatch { .. })
        ));
        let geom = RegionGeometry::new(2.87, 3.0).unwrap();
        let wrong_grid = Decomposition::new(*decomp.pbox(), (1, 1, 1), &geom).unwrap();
        assert!(matches!(
            ck.validate_against(&wrong_grid, &config),
            Err(ParallelError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_species_byte_is_rejected() {
        let (decomp, config, lattice) = setup();
        let mut states = states_from(&decomp, &lattice, 1);
        states[0].interior[0] = 9;
        assert!(matches!(
            ParallelCheckpoint::assemble(&decomp, &config, 1, &states),
            Err(ParallelError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn writer_assembles_once_all_ranks_report() {
        let (decomp, config, lattice) = setup();
        let dir = std::env::temp_dir().join(format!("tkmc-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.ckpt");
        let w = CheckpointWriter::new(decomp.clone(), config, path.clone());
        let states = states_from(&decomp, &lattice, 2);
        w.submit(states[0].clone()).unwrap();
        assert!(!path.exists(), "waits for all ranks");
        w.submit(states[1].clone()).unwrap();
        let ck = ParallelCheckpoint::load(&path).unwrap();
        assert_eq!(ck.cycle, 2);
        assert_eq!(ck.lattice.as_slice(), lattice.as_slice());
        ck.rank_resume(1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
