//! Errors of the parallel runtime.

use std::fmt;
use tensorkmc_core::KmcError;

/// Failures of decomposition or the sublattice driver.
#[derive(Debug, Clone, PartialEq)]
pub enum ParallelError {
    /// The rank grid does not divide the box evenly (or yields odd block
    /// extents, which cannot be split into octants).
    GridMismatch {
        /// Half-grid extent of the axis.
        extent: i32,
        /// Ranks along the axis.
        ranks: usize,
    },
    /// An octant is narrower than twice the interaction footprint, so two
    /// concurrently-active sectors of adjacent ranks could touch a common
    /// site — the conflict the sublattice algorithm exists to prevent.
    SectorTooNarrow {
        /// Octant extent (half-grid units).
        octant: i32,
        /// Required minimum (2 × footprint extent).
        required: i32,
    },
    /// A rank's KMC engine failed.
    Kmc(KmcError),
    /// A rank thread panicked. Carries the rank id and the panic payload's
    /// message so the failure is attributable instead of aborting the whole
    /// process through a bare `join().expect(..)`.
    RankPanicked {
        /// The rank whose thread panicked.
        rank: usize,
        /// The panic payload, stringified (`&str`/`String` payloads verbatim;
        /// other payload types are summarised).
        message: String,
    },
    /// `t_stop` or the total time is not positive.
    BadTimes {
        /// Sector synchronisation interval, s.
        t_stop: f64,
        /// Total simulated time, s.
        total: f64,
    },
    /// A rank observed that a peer went away (channel hung up, connection
    /// reset, or receive timeout). This is the *per-observer* symptom; the
    /// driver collapses the cascade of these into one root-cause error
    /// ([`ParallelError::RankLost`] or the dead rank's own failure) so the
    /// first-failing rank is reported exactly once.
    PeerDisconnected {
        /// The rank that observed the disconnect.
        rank: usize,
        /// The peer that went away.
        peer: usize,
    },
    /// A rank was lost (its process died or its connection dropped) — the
    /// collapsed, attributable form of a peer-disconnect cascade, and what
    /// the coordinator reports when a worker vanishes.
    RankLost {
        /// The rank that was lost.
        rank: usize,
    },
    /// A message failed wire-level validation: undecodable frame, bad
    /// species byte, out-of-range slot, or a payload length that does not
    /// match the pre-agreed halo plan. Mandatory once bytes come off a
    /// socket — a corrupt frame must reject the message, not abort the rank.
    BadFrame {
        /// The rank that rejected the message.
        rank: usize,
        /// The peer the message came from.
        peer: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The fabric wiring is invalid: a neighbour list contains a duplicate,
    /// a self-loop, an out-of-range rank, or an asymmetric entry.
    FabricConfig {
        /// Which validation failed.
        detail: String,
    },
    /// A transport-level failure that is not attributable to a specific
    /// peer: socket setup, rendezvous, or an unattributable timeout.
    Transport {
        /// The rank that hit the failure (coordinator reports use the rank
        /// count as a pseudo-rank).
        rank: usize,
        /// The underlying failure.
        detail: String,
    },
    /// A resume checkpoint does not match the current run configuration
    /// (different grid, box, seed, or `t_stop`).
    CheckpointMismatch {
        /// Which field disagreed.
        detail: String,
    },
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::GridMismatch { extent, ranks } => write!(
                f,
                "rank grid mismatch: extent {extent} half-units over {ranks} ranks must divide to an even block"
            ),
            ParallelError::SectorTooNarrow { octant, required } => write!(
                f,
                "sector too narrow: octant extent {octant} < required {required} half-units"
            ),
            ParallelError::Kmc(e) => write!(f, "rank KMC failure: {e}"),
            ParallelError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} thread panicked: {message}")
            }
            ParallelError::BadTimes { t_stop, total } => {
                write!(f, "invalid times: t_stop {t_stop}, total {total}")
            }
            ParallelError::PeerDisconnected { rank, peer } => {
                write!(f, "rank {rank}: peer rank {peer} disconnected")
            }
            ParallelError::RankLost { rank } => {
                write!(f, "rank {rank} was lost (process died or disconnected)")
            }
            ParallelError::BadFrame { rank, peer, detail } => {
                write!(f, "rank {rank}: malformed message from rank {peer}: {detail}")
            }
            ParallelError::FabricConfig { detail } => {
                write!(f, "invalid fabric wiring: {detail}")
            }
            ParallelError::Transport { rank, detail } => {
                write!(f, "rank {rank}: transport failure: {detail}")
            }
            ParallelError::CheckpointMismatch { detail } => {
                write!(f, "checkpoint does not match this run: {detail}")
            }
        }
    }
}

impl ParallelError {
    /// `true` for errors that are a *symptom* of another rank's failure
    /// rather than a root cause of their own (peer-disconnect observations
    /// and unattributable transport timeouts). Used by the driver to report
    /// the first-failing rank once instead of a cascade.
    pub fn is_secondary(&self) -> bool {
        matches!(
            self,
            ParallelError::PeerDisconnected { .. }
                | ParallelError::RankLost { .. }
                | ParallelError::Transport { .. }
        )
    }
}

impl std::error::Error for ParallelError {}

impl From<KmcError> for ParallelError {
    fn from(e: KmcError) -> Self {
        ParallelError::Kmc(e)
    }
}
