//! Errors of the parallel runtime.

use std::fmt;
use tensorkmc_core::KmcError;

/// Failures of decomposition or the sublattice driver.
#[derive(Debug, Clone, PartialEq)]
pub enum ParallelError {
    /// The rank grid does not divide the box evenly (or yields odd block
    /// extents, which cannot be split into octants).
    GridMismatch {
        /// Half-grid extent of the axis.
        extent: i32,
        /// Ranks along the axis.
        ranks: usize,
    },
    /// An octant is narrower than twice the interaction footprint, so two
    /// concurrently-active sectors of adjacent ranks could touch a common
    /// site — the conflict the sublattice algorithm exists to prevent.
    SectorTooNarrow {
        /// Octant extent (half-grid units).
        octant: i32,
        /// Required minimum (2 × footprint extent).
        required: i32,
    },
    /// A rank's KMC engine failed.
    Kmc(KmcError),
    /// A rank thread panicked. Carries the rank id and the panic payload's
    /// message so the failure is attributable instead of aborting the whole
    /// process through a bare `join().expect(..)`.
    RankPanicked {
        /// The rank whose thread panicked.
        rank: usize,
        /// The panic payload, stringified (`&str`/`String` payloads verbatim;
        /// other payload types are summarised).
        message: String,
    },
    /// `t_stop` or the total time is not positive.
    BadTimes {
        /// Sector synchronisation interval, s.
        t_stop: f64,
        /// Total simulated time, s.
        total: f64,
    },
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::GridMismatch { extent, ranks } => write!(
                f,
                "rank grid mismatch: extent {extent} half-units over {ranks} ranks must divide to an even block"
            ),
            ParallelError::SectorTooNarrow { octant, required } => write!(
                f,
                "sector too narrow: octant extent {octant} < required {required} half-units"
            ),
            ParallelError::Kmc(e) => write!(f, "rank KMC failure: {e}"),
            ParallelError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} thread panicked: {message}")
            }
            ParallelError::BadTimes { t_stop, total } => {
                write!(f, "invalid times: t_stop {t_stop}, total {total}")
            }
        }
    }
}

impl std::error::Error for ParallelError {}

impl From<KmcError> for ParallelError {
    fn from(e: KmcError) -> Self {
        ParallelError::Kmc(e)
    }
}
