//! The rank-to-rank message fabric: a [`Transport`] abstraction with the
//! in-process channel backend.
//!
//! This is the reproduction's stand-in for MPI point-to-point communication
//! (DESIGN.md §5h): the [`Transport`] trait carries the protocol — typed
//! point-to-point messages plus a barrier — and two backends implement it:
//! [`RankComm`] (ranks are threads; `send`/`recv` move owned buffers through
//! `std::sync::mpsc` channels) and [`crate::tcp::TcpTransport`] (ranks are
//! processes; messages are length-prefixed frames over `std::net`). The
//! protocol is static — within one phase each rank sends exactly one message
//! to each neighbour — so receives never block indefinitely on a healthy
//! fabric; every operation is fallible so a dead peer surfaces as an
//! attributable [`ParallelError`] instead of a cascade of panics.

use crate::checkpoint::RankState;
use crate::error::ParallelError;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default bound on how long a rank waits for a peer message or a barrier
/// before declaring the peer lost.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// One inter-rank message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Remote modifications: `(owner-local slot, species byte)` pairs for
    /// sites the sender changed but does not own.
    Mods(Vec<(u32, u8)>),
    /// Halo refresh: species bytes of the receiver's requested ghost sites,
    /// in the pre-agreed order.
    Halo(Vec<u8>),
}

/// The rank runtime's view of its communication fabric. Implemented by the
/// in-process channel backend ([`RankComm`]) and the TCP socket backend
/// ([`crate::tcp::TcpTransport`]); the sublattice driver is generic over it,
/// so the same driver runs threads-in-process and processes-across-hosts.
pub trait Transport: Send {
    /// This endpoint's rank id.
    fn rank(&self) -> usize;

    /// The neighbour ranks this endpoint is wired to, sorted ascending.
    fn peers(&self) -> Vec<usize>;

    /// Sends a message to a neighbour rank.
    fn send(&mut self, to: usize, msg: Msg) -> Result<(), ParallelError>;

    /// Receives the next message from a neighbour rank (blocking, bounded
    /// by the backend's receive timeout).
    fn recv(&mut self, from: usize) -> Result<Msg, ParallelError>;

    /// Waits for every rank to reach the same point. Fails with an
    /// attributable error if a participant died.
    fn barrier(&mut self) -> Result<(), ParallelError>;

    /// Whether the backend wants this rank's state submitted at the given
    /// cycle boundary (mid-run checkpointing and, on the TCP backend, the
    /// final gather the coordinator assembles outputs from).
    fn wants_state(&self, _cycle: u64, _is_final: bool) -> bool {
        false
    }

    /// Submits this rank's cycle-boundary state to the assembling endpoint.
    fn submit_state(&mut self, _state: RankState) -> Result<(), ParallelError> {
        Ok(())
    }

    /// Marks the run cleanly completed. A transport dropped *without* this
    /// call counts as a dead rank (the channel backend aborts the shared
    /// barrier; the TCP backend's closed sockets do the same job).
    fn finish(&mut self) -> Result<(), ParallelError>;
}

/// A barrier whose waiters can be woken with an error when a participant
/// dies. `std::sync::Barrier` would deadlock every surviving rank if one
/// rank exits early; this one records the first aborted rank and fails all
/// current and future waits with it, which is exactly the attribution the
/// driver needs.
pub(crate) struct AbortableBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    n: usize,
    count: usize,
    generation: u64,
    /// First rank that abandoned the fabric, if any.
    aborted: Option<usize>,
}

impl AbortableBarrier {
    pub(crate) fn new(n: usize) -> Self {
        AbortableBarrier {
            state: Mutex::new(BarrierState {
                n,
                count: 0,
                generation: 0,
                aborted: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Waits for all `n` participants. `Err(rank)` names the first rank
    /// that abandoned the barrier; `Err(usize::MAX)` is a timeout.
    pub(crate) fn wait(&self, timeout: Duration) -> Result<(), usize> {
        let mut s = self.state.lock().unwrap();
        if let Some(dead) = s.aborted {
            return Err(dead);
        }
        s.count += 1;
        if s.count == s.n {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        loop {
            let (next, res) = self.cv.wait_timeout(s, timeout).unwrap();
            s = next;
            if let Some(dead) = s.aborted {
                return Err(dead);
            }
            if s.generation != gen {
                return Ok(());
            }
            if res.timed_out() {
                return Err(usize::MAX);
            }
        }
    }

    /// Records `rank` as dead and wakes every waiter with the error.
    pub(crate) fn abort(&self, rank: usize) {
        let mut s = self.state.lock().unwrap();
        if s.aborted.is_none() {
            s.aborted = Some(rank);
        }
        self.cv.notify_all();
    }
}

/// Per-rank endpoint of the in-process channel fabric.
pub struct RankComm {
    /// This rank's id.
    pub rank: usize,
    senders: HashMap<usize, Sender<Msg>>,
    receivers: HashMap<usize, Receiver<Msg>>,
    barrier: Arc<AbortableBarrier>,
    recv_timeout: Duration,
    /// Shared mid-run checkpoint collector, when the run checkpoints.
    collector: Option<Arc<dyn StateCollector>>,
    checkpoint_every: u64,
    finished: bool,
}

/// Where the channel backend's cycle-boundary states go (the in-process
/// counterpart of the TCP coordinator's STATE frames). Implemented by
/// [`crate::checkpoint::CheckpointWriter`].
pub trait StateCollector: Send + Sync {
    /// Accepts one rank's state; assembles/writes when a cycle completes.
    fn submit(&self, state: RankState) -> Result<(), ParallelError>;
}

impl std::fmt::Debug for RankComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut peers: Vec<usize> = self.senders.keys().copied().collect();
        peers.sort_unstable();
        f.debug_struct("RankComm")
            .field("rank", &self.rank)
            .field("peers", &peers)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl RankComm {
    /// Attaches a mid-run checkpoint collector: every `every` cycles each
    /// rank submits its state, and `collector` assembles the global
    /// checkpoint once all ranks of that cycle have reported.
    pub fn set_collector(&mut self, collector: Arc<dyn StateCollector>, every: u64) {
        self.collector = Some(collector);
        self.checkpoint_every = every;
    }
}

impl Transport for RankComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn peers(&self) -> Vec<usize> {
        let mut p: Vec<usize> = self.senders.keys().copied().collect();
        p.sort_unstable();
        p
    }

    fn send(&mut self, to: usize, msg: Msg) -> Result<(), ParallelError> {
        let tx = self
            .senders
            .get(&to)
            .ok_or_else(|| ParallelError::FabricConfig {
                detail: format!("rank {} is not wired to rank {to}", self.rank),
            })?;
        tx.send(msg).map_err(|_| ParallelError::PeerDisconnected {
            rank: self.rank,
            peer: to,
        })
    }

    fn recv(&mut self, from: usize) -> Result<Msg, ParallelError> {
        let rx = self
            .receivers
            .get(&from)
            .ok_or_else(|| ParallelError::FabricConfig {
                detail: format!("rank {} is not wired to rank {from}", self.rank),
            })?;
        match rx.recv_timeout(self.recv_timeout) {
            Ok(msg) => Ok(msg),
            // Both a hung-up channel and a timeout mean the peer is gone
            // for our purposes: the protocol is static, so a healthy peer
            // always sends within the timeout.
            Err(RecvTimeoutError::Disconnected) | Err(RecvTimeoutError::Timeout) => {
                Err(ParallelError::PeerDisconnected {
                    rank: self.rank,
                    peer: from,
                })
            }
        }
    }

    fn barrier(&mut self) -> Result<(), ParallelError> {
        match self.barrier.wait(self.recv_timeout) {
            Ok(()) => Ok(()),
            Err(usize::MAX) => Err(ParallelError::Transport {
                rank: self.rank,
                detail: format!("barrier timeout after {:?}", self.recv_timeout),
            }),
            Err(dead) => Err(ParallelError::PeerDisconnected {
                rank: self.rank,
                peer: dead,
            }),
        }
    }

    fn wants_state(&self, cycle: u64, is_final: bool) -> bool {
        // The final cycle is always collected when a collector is attached,
        // so the on-disk checkpoint ends at the run's last state — the same
        // contract the TCP coordinator keeps, byte for byte.
        self.collector.is_some()
            && (is_final
                || (self.checkpoint_every > 0 && cycle.is_multiple_of(self.checkpoint_every)))
    }

    fn submit_state(&mut self, state: RankState) -> Result<(), ParallelError> {
        match &self.collector {
            Some(c) => c.submit(state),
            None => Ok(()),
        }
    }

    fn finish(&mut self) -> Result<(), ParallelError> {
        self.finished = true;
        Ok(())
    }
}

impl Drop for RankComm {
    fn drop(&mut self) {
        // A rank that exits without finishing (panic or error return) must
        // not strand its peers at the barrier: poison it with our identity
        // so every waiter fails with an error naming this rank.
        if !self.finished {
            self.barrier.abort(self.rank);
        }
    }
}

/// Validates one rank's neighbour list: no self-loops, no duplicates, no
/// out-of-range ranks, and symmetry with the other lists.
fn validate_neighbors(neighbors: &[Vec<usize>]) -> Result<(), ParallelError> {
    let n = neighbors.len();
    for (i, ns) in neighbors.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for &j in ns {
            if j == i {
                return Err(ParallelError::FabricConfig {
                    detail: format!("rank {i} lists itself as a neighbour (self-loop)"),
                });
            }
            if j >= n {
                return Err(ParallelError::FabricConfig {
                    detail: format!("rank {i} lists out-of-range neighbour {j} (ranks: {n})"),
                });
            }
            if !seen.insert(j) {
                return Err(ParallelError::FabricConfig {
                    detail: format!("rank {i} lists neighbour {j} twice"),
                });
            }
            if !neighbors[j].contains(&i) {
                return Err(ParallelError::FabricConfig {
                    detail: format!("asymmetric neighbour lists: {i} -> {j} but not {j} -> {i}"),
                });
            }
        }
    }
    Ok(())
}

/// Builds a fully-wired in-process fabric: rank `i` is connected to
/// `neighbors[i]`. Neighbour lists are validated (symmetric, no duplicates,
/// no self-loops, in range) and a violation returns a clear
/// [`ParallelError::FabricConfig`] instead of a cryptic panic.
pub fn build_fabric(neighbors: &[Vec<usize>]) -> Result<Vec<RankComm>, ParallelError> {
    build_fabric_with_timeout(neighbors, DEFAULT_RECV_TIMEOUT)
}

/// [`build_fabric`] with an explicit receive/barrier timeout (how long a
/// rank waits before declaring a silent peer lost).
pub fn build_fabric_with_timeout(
    neighbors: &[Vec<usize>],
    recv_timeout: Duration,
) -> Result<Vec<RankComm>, ParallelError> {
    validate_neighbors(neighbors)?;
    let n = neighbors.len();
    let barrier = Arc::new(AbortableBarrier::new(n));
    // channels[(from, to)]
    let mut txs: HashMap<(usize, usize), Sender<Msg>> = HashMap::new();
    let mut rxs: HashMap<(usize, usize), Receiver<Msg>> = HashMap::new();
    for (i, ns) in neighbors.iter().enumerate() {
        for &j in ns {
            let (tx, rx) = channel();
            txs.insert((i, j), tx);
            rxs.insert((i, j), rx);
        }
    }
    Ok((0..n)
        .map(|rank| RankComm {
            rank,
            senders: neighbors[rank]
                .iter()
                .map(|&j| (j, txs[&(rank, j)].clone()))
                .collect(),
            receivers: neighbors[rank]
                .iter()
                .map(|&j| (j, rxs.remove(&(j, rank)).expect("validated symmetric")))
                .collect(),
            barrier: Arc::clone(&barrier),
            recv_timeout,
            collector: None,
            checkpoint_every: 0,
            finished: false,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong_between_two_ranks() {
        let fabric = build_fabric(&[vec![1], vec![0]]).unwrap();
        let mut it = fabric.into_iter();
        let mut c0 = it.next().unwrap();
        let mut c1 = it.next().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                c0.send(1, Msg::Mods(vec![(7, 2)])).unwrap();
                match c0.recv(1).unwrap() {
                    Msg::Halo(v) => assert_eq!(v, vec![1, 0, 1]),
                    other => panic!("unexpected {other:?}"),
                }
                c0.finish().unwrap();
            });
            s.spawn(move || {
                match c1.recv(0).unwrap() {
                    Msg::Mods(v) => assert_eq!(v, vec![(7, 2)]),
                    other => panic!("unexpected {other:?}"),
                }
                c1.send(0, Msg::Halo(vec![1, 0, 1])).unwrap();
                c1.finish().unwrap();
            });
        });
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fabric = build_fabric(&[vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap();
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            for mut c in fabric {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    c.barrier().unwrap();
                    // After the barrier, every rank has incremented.
                    assert_eq!(counter.load(Ordering::SeqCst), 3);
                    c.finish().unwrap();
                });
            }
        });
    }

    #[test]
    fn peers_sorted() {
        let fabric = build_fabric(&[vec![2, 1], vec![0], vec![0]]).unwrap();
        assert_eq!(fabric[0].peers(), vec![1, 2]);
    }

    #[test]
    fn asymmetric_wiring_is_an_error() {
        let err = build_fabric(&[vec![1], vec![]]).unwrap_err();
        match err {
            ParallelError::FabricConfig { detail } => {
                assert!(detail.contains("asymmetric"), "{detail}")
            }
            other => panic!("expected FabricConfig, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_neighbour_is_an_error() {
        // A duplicate entry used to silently overwrite the first channel and
        // then die with the cryptic `expect("wired")`.
        let err = build_fabric(&[vec![1, 1], vec![0]]).unwrap_err();
        match err {
            ParallelError::FabricConfig { detail } => {
                assert!(detail.contains("twice"), "{detail}")
            }
            other => panic!("expected FabricConfig, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_is_an_error() {
        let err = build_fabric(&[vec![0]]).unwrap_err();
        match err {
            ParallelError::FabricConfig { detail } => {
                assert!(detail.contains("self-loop"), "{detail}")
            }
            other => panic!("expected FabricConfig, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_neighbour_is_an_error() {
        assert!(matches!(
            build_fabric(&[vec![1, 5], vec![0]]),
            Err(ParallelError::FabricConfig { .. })
        ));
    }

    #[test]
    fn dead_peer_surfaces_as_peer_disconnected_not_panic() {
        let fabric = build_fabric(&[vec![1], vec![0]]).unwrap();
        let mut it = fabric.into_iter();
        let mut c0 = it.next().unwrap();
        let c1 = it.next().unwrap();
        drop(c1); // rank 1 dies without finishing
        match c0.recv(1) {
            Err(ParallelError::PeerDisconnected { rank: 0, peer: 1 }) => {}
            other => panic!("expected PeerDisconnected {{0, 1}}, got {other:?}"),
        }
        match c0.send(1, Msg::Halo(vec![])) {
            Err(ParallelError::PeerDisconnected { rank: 0, peer: 1 }) => {}
            other => panic!("expected PeerDisconnected {{0, 1}}, got {other:?}"),
        }
    }

    #[test]
    fn abandoned_rank_aborts_the_barrier_with_its_identity() {
        let fabric = build_fabric(&[vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap();
        let mut it = fabric.into_iter();
        let mut c0 = it.next().unwrap();
        let mut c1 = it.next().unwrap();
        let c2 = it.next().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                // Rank 2 dies before reaching the barrier.
                drop(c2);
            });
            let h0 = s.spawn(move || c0.barrier());
            let h1 = s.spawn(move || c1.barrier());
            for (rank, h) in [(0usize, h0), (1usize, h1)] {
                match h.join().unwrap() {
                    Err(ParallelError::PeerDisconnected { rank: r, peer: 2 }) => {
                        assert_eq!(r, rank)
                    }
                    other => panic!("expected PeerDisconnected peer 2, got {other:?}"),
                }
            }
        });
    }

    #[test]
    fn recv_timeout_surfaces_peer_disconnected() {
        let fabric =
            build_fabric_with_timeout(&[vec![1], vec![0]], Duration::from_millis(50)).unwrap();
        let mut it = fabric.into_iter();
        let mut c0 = it.next().unwrap();
        let _c1 = it.next().unwrap(); // alive but silent
        match c0.recv(1) {
            Err(ParallelError::PeerDisconnected { rank: 0, peer: 1 }) => {}
            other => panic!("expected timeout as PeerDisconnected, got {other:?}"),
        }
    }

    #[test]
    fn finished_rank_does_not_poison_the_barrier() {
        let fabric = build_fabric(&[vec![1], vec![0]]).unwrap();
        let mut it = fabric.into_iter();
        let mut c0 = it.next().unwrap();
        let mut c1 = it.next().unwrap();
        c1.finish().unwrap();
        drop(c1);
        // Rank 0 can still fail cleanly on the channel (peer gone) without
        // the barrier reporting a dead rank for a *clean* exit.
        assert!(matches!(
            c0.recv(1),
            Err(ParallelError::PeerDisconnected { .. })
        ));
    }
}
