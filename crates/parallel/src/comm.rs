//! The rank-to-rank message fabric: typed channels plus a barrier.
//!
//! This is the reproduction's stand-in for MPI point-to-point communication
//! (DESIGN.md): ranks are threads; `send`/`recv` move owned buffers through
//! `std::sync::mpsc` channels; `barrier` synchronises a sector boundary. The
//! protocol is static — within one phase each rank sends exactly one message
//! to each neighbour — so receives never block indefinitely.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// One inter-rank message.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Remote modifications: `(owner-local slot, species byte)` pairs for
    /// sites the sender changed but does not own.
    Mods(Vec<(u32, u8)>),
    /// Halo refresh: species bytes of the receiver's requested ghost sites,
    /// in the pre-agreed order.
    Halo(Vec<u8>),
}

/// Per-rank endpoint of the fabric.
pub struct RankComm {
    /// This rank's id.
    pub rank: usize,
    senders: HashMap<usize, Sender<Msg>>,
    receivers: HashMap<usize, Receiver<Msg>>,
    barrier: Arc<Barrier>,
}

impl RankComm {
    /// Sends a message to a neighbour rank.
    ///
    /// # Panics
    /// Panics if `to` is not a wired neighbour — a protocol bug.
    pub fn send(&self, to: usize, msg: Msg) {
        self.senders[&to].send(msg).expect("peer hung up");
    }

    /// Receives the next message from a neighbour rank (blocking).
    pub fn recv(&self, from: usize) -> Msg {
        self.receivers[&from].recv().expect("peer hung up")
    }

    /// Waits for every rank to reach the same point.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// The neighbour ranks this endpoint is wired to, sorted.
    pub fn peers(&self) -> Vec<usize> {
        let mut p: Vec<usize> = self.senders.keys().copied().collect();
        p.sort_unstable();
        p
    }
}

/// Builds a fully-wired fabric: rank `i` is connected to `neighbors[i]`.
/// Connections must be symmetric (if `j ∈ neighbors[i]` then
/// `i ∈ neighbors[j]`).
pub fn build_fabric(neighbors: &[Vec<usize>]) -> Vec<RankComm> {
    let n = neighbors.len();
    let barrier = Arc::new(Barrier::new(n));
    // channels[(from, to)]
    let mut txs: HashMap<(usize, usize), Sender<Msg>> = HashMap::new();
    let mut rxs: HashMap<(usize, usize), Receiver<Msg>> = HashMap::new();
    for (i, ns) in neighbors.iter().enumerate() {
        for &j in ns {
            assert!(
                neighbors[j].contains(&i),
                "asymmetric neighbour lists: {i} -> {j}"
            );
            let (tx, rx) = channel();
            txs.insert((i, j), tx);
            rxs.insert((i, j), rx);
        }
    }
    (0..n)
        .map(|rank| RankComm {
            rank,
            senders: neighbors[rank]
                .iter()
                .map(|&j| (j, txs[&(rank, j)].clone()))
                .collect(),
            receivers: neighbors[rank]
                .iter()
                .map(|&j| (j, rxs.remove(&(j, rank)).expect("wired")))
                .collect(),
            barrier: Arc::clone(&barrier),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong_between_two_ranks() {
        let fabric = build_fabric(&[vec![1], vec![0]]);
        let mut it = fabric.into_iter();
        let c0 = it.next().unwrap();
        let c1 = it.next().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                c0.send(1, Msg::Mods(vec![(7, 2)]));
                match c0.recv(1) {
                    Msg::Halo(v) => assert_eq!(v, vec![1, 0, 1]),
                    other => panic!("unexpected {other:?}"),
                }
            });
            s.spawn(move || {
                match c1.recv(0) {
                    Msg::Mods(v) => assert_eq!(v, vec![(7, 2)]),
                    other => panic!("unexpected {other:?}"),
                }
                c1.send(0, Msg::Halo(vec![1, 0, 1]));
            });
        });
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fabric = build_fabric(&[vec![1, 2], vec![0, 2], vec![0, 1]]);
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            for c in fabric {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    c.barrier();
                    // After the barrier, every rank has incremented.
                    assert_eq!(counter.load(Ordering::SeqCst), 3);
                });
            }
        });
    }

    #[test]
    fn peers_sorted() {
        let fabric = build_fabric(&[vec![2, 1], vec![0], vec![0]]);
        assert_eq!(fabric[0].peers(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetric_wiring_panics() {
        let _ = build_fabric(&[vec![1], vec![]]);
    }
}
