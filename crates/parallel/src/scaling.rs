//! Analytic scaling model for the paper-scale strong/weak scalability
//! figures (Figs. 12–13).
//!
//! We cannot run 27,456,000 cores; what we can do is (a) measure the real
//! sublattice algorithm on 1..N host threads and (b) extrapolate with a
//! calibrated computation/communication model. The model captures exactly
//! the terms that govern the sublattice algorithm's efficiency:
//!
//! * compute per sector ∝ local vacancies × hop rate × `t_stop`;
//! * halo exchange ∝ the block's surface × ghost depth (so it shrinks as
//!   `(V/p)^{2/3}` under strong scaling and stays constant under weak
//!   scaling);
//! * synchronisation ∝ `log₂ p` (tree barrier).
//!
//! With the TCP transport in the tree, the communication constants no
//! longer need to be guessed from interconnect datasheets:
//! [`CommCalibration::measure_loopback`] measures the real frame codec
//! over a real socket (round-trip latency → `t_sync`, large-frame
//! throughput → `t_halo_byte`) and [`ScalingModel::with_comm`] folds the
//! measurement into the model.

use crate::error::ParallelError;
use crate::tcp::{read_frame, write_frame, Frame, TcpCounters};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Measured communication constants: what one barrier round-trip and one
/// halo byte cost on an actual socket running the actual frame codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCalibration {
    /// Seconds per small-frame round trip (the barrier/release exchange).
    pub t_sync: f64,
    /// Marginal seconds per halo payload byte.
    pub t_halo_byte: f64,
}

impl CommCalibration {
    /// Measures the frame codec over a loopback TCP connection: an echo
    /// thread reflects every frame, and the caller times `rounds`
    /// round-trips of a small barrier frame (the sync term) and of a large
    /// halo frame (whose per-byte delta over the small frame is the
    /// halo-byte term). Minimum-of-rounds is used so scheduler noise only
    /// inflates, never deflates, the constants.
    ///
    /// Loopback has no physical network in the path, so the absolute
    /// numbers are optimistic for a cluster — but they are *measured*
    /// (syscall, copy, and codec costs included), which already replaces
    /// the two guessed constants of [`ScalingModel::paper_573k`].
    pub fn measure_loopback(rounds: usize) -> Result<Self, ParallelError> {
        const HALO_BYTES: usize = 1 << 20;
        let rounds = rounds.max(1);
        let err = |detail: String| ParallelError::Transport {
            rank: usize::MAX,
            detail,
        };
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| err(format!("calibration bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| err(format!("calibration addr: {e}")))?;
        let echoes = 2 * rounds + 2; // warm-up pair + measured rounds
        let echo = std::thread::spawn(move || {
            let counters = TcpCounters::default();
            let (mut s, _) = listener.accept()?;
            s.set_nodelay(true).ok();
            for _ in 0..echoes {
                let f = match read_frame(&mut s, &counters) {
                    Ok(f) => f,
                    Err(_) => return Ok(()), // caller hung up early
                };
                write_frame(&mut s, &f, &counters)?;
            }
            Ok::<(), std::io::Error>(())
        });
        let run = (|| -> std::io::Result<(f64, f64)> {
            let counters = TcpCounters::default();
            let mut s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(Duration::from_secs(10)))?;
            let mut round_trip = |frame: &Frame| -> std::io::Result<f64> {
                let start = Instant::now();
                write_frame(&mut s, frame, &counters)?;
                read_frame(&mut s, &counters).map_err(|e| match e {
                    crate::tcp::FrameError::Io(e) => e,
                    crate::tcp::FrameError::Decode(d) => {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, d)
                    }
                })?;
                Ok(start.elapsed().as_secs_f64())
            };
            let small = Frame::Barrier { epoch: 0 };
            let large = Frame::Halo(vec![0u8; HALO_BYTES]);
            // Warm-up: first exchange pays connection and allocator setup.
            round_trip(&small)?;
            round_trip(&large)?;
            let mut t_small = f64::INFINITY;
            let mut t_large = f64::INFINITY;
            for _ in 0..rounds {
                t_small = t_small.min(round_trip(&small)?);
                t_large = t_large.min(round_trip(&large)?);
            }
            // The large frame's payload crosses the socket twice (out and
            // echoed back), so the marginal cost is per 2·HALO_BYTES.
            let per_byte = (t_large - t_small).max(0.0) / (2.0 * HALO_BYTES as f64);
            Ok((t_small, per_byte))
        })();
        let _ = echo.join();
        let (t_sync, t_halo_byte) = run.map_err(|e| err(format!("calibration run: {e}")))?;
        Ok(CommCalibration {
            t_sync,
            // A zero per-byte cost (timer quantisation) would make the
            // model claim free communication; keep a conservative floor of
            // 10 GB/s — the paper-style datasheet constant.
            t_halo_byte: t_halo_byte.max(1.0e-10),
        })
    }
}

/// Calibrated cost coefficients of one core group (CG).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingModel {
    /// Seconds of CG compute per executed KMC event (vacancy-system refresh
    /// + propensity update); calibrated from a measured serial run.
    pub t_event: f64,
    /// Mean executed hops per vacancy per second of simulated time
    /// (≈ Σ_X Γ_X; temperature-dependent).
    pub hop_rate: f64,
    /// Seconds per halo byte (inverse network bandwidth per CG).
    pub t_halo_byte: f64,
    /// Barrier latency base, seconds.
    pub t_sync: f64,
    /// Atoms per lattice site surface unit — converts block surface area
    /// (in sites^(2/3) units) times ghost depth (sites) into halo bytes.
    pub halo_bytes_per_site: f64,
    /// Ghost depth in sites (≈ footprint in lattice layers).
    pub ghost_depth: f64,
}

impl ScalingModel {
    /// A parameterisation representative of the paper's setup: 573 K hop
    /// rates for Fe (E_a ≈ 0.65 eV), an event cost calibrated to our
    /// evaluator on the simulated CG, and interconnect constants typical of
    /// a fat-tree HPC network.
    pub fn paper_573k() -> Self {
        // Γ ≈ 8 · 6e12 · exp(-0.65 eV / kT(573 K)) ≈ 9e7 hops/s per vacancy.
        ScalingModel {
            t_event: 65e-6,
            hop_rate: 9.0e7,
            t_halo_byte: 1.0e-10, // 10 GB/s per CG
            t_sync: 5.0e-6,
            halo_bytes_per_site: 1.0, // one species byte
            ghost_depth: 5.0,
        }
    }

    /// Replaces the guessed communication constants with measured ones
    /// (see [`CommCalibration::measure_loopback`]); the compute-side
    /// coefficients are untouched.
    pub fn with_comm(self, comm: CommCalibration) -> Self {
        ScalingModel {
            t_sync: comm.t_sync,
            t_halo_byte: comm.t_halo_byte,
            ..self
        }
    }

    /// Wall-clock seconds per simulated second for `p` CGs simulating
    /// `atoms_total` atoms with vacancy fraction `vac_frac`, sector interval
    /// `t_stop`.
    pub fn wall_per_sim_second(&self, atoms_total: f64, vac_frac: f64, t_stop: f64, p: f64) -> f64 {
        let cycles_per_sim_s = 1.0 / t_stop;
        let atoms_per_cg = atoms_total / p;
        let vac_per_cg = atoms_per_cg * vac_frac;
        // Per cycle (8 sectors):
        let compute = vac_per_cg * self.hop_rate * t_stop * self.t_event;
        // Halo: 6 faces × (block side)² sites × ghost depth, exchanged once
        // per sector (8× per cycle).
        let side = atoms_per_cg.cbrt();
        let halo_bytes = 6.0 * side * side * self.ghost_depth * self.halo_bytes_per_site;
        let comm = 8.0 * halo_bytes * self.t_halo_byte;
        let sync = 8.0 * self.t_sync * p.log2().max(1.0);
        cycles_per_sim_s * (compute + comm + sync)
    }

    /// Strong-scaling wall time (s) for a fixed problem, normalised workload
    /// `sim_time` seconds.
    pub fn strong_time(
        &self,
        atoms_total: f64,
        vac_frac: f64,
        t_stop: f64,
        sim_time: f64,
        p: f64,
    ) -> f64 {
        sim_time * self.wall_per_sim_second(atoms_total, vac_frac, t_stop, p)
    }

    /// Strong-scaling parallel efficiency of `p` CGs relative to `p0`.
    pub fn strong_efficiency(
        &self,
        atoms_total: f64,
        vac_frac: f64,
        t_stop: f64,
        p0: f64,
        p: f64,
    ) -> f64 {
        let t0 = self.wall_per_sim_second(atoms_total, vac_frac, t_stop, p0);
        let t = self.wall_per_sim_second(atoms_total, vac_frac, t_stop, p);
        (t0 * p0) / (t * p)
    }

    /// Weak-scaling wall time (s): `atoms_per_cg` is constant, the system
    /// grows with `p`.
    pub fn weak_time(
        &self,
        atoms_per_cg: f64,
        vac_frac: f64,
        t_stop: f64,
        sim_time: f64,
        p: f64,
    ) -> f64 {
        sim_time * self.wall_per_sim_second(atoms_per_cg * p, vac_frac, t_stop, p)
    }

    /// Weak-scaling efficiency of `p` CGs relative to `p0`.
    pub fn weak_efficiency(
        &self,
        atoms_per_cg: f64,
        vac_frac: f64,
        t_stop: f64,
        p0: f64,
        p: f64,
    ) -> f64 {
        let t0 = self.weak_time(atoms_per_cg, vac_frac, t_stop, 1.0, p0);
        let t = self.weak_time(atoms_per_cg, vac_frac, t_stop, 1.0, p);
        t0 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VAC: f64 = 8e-6; // 8×10⁻⁴ at.%
    const TSTOP: f64 = 2e-8;

    #[test]
    fn fig12_strong_scaling_shape() {
        // Paper Fig. 12: 1.92 T atoms, 12,000 → 384,000 CGs, ≥85 %
        // efficiency at the largest scale.
        let m = ScalingModel::paper_573k();
        let atoms = 1.92e12;
        let p0 = 12_000.0;
        let mut last = 1.0;
        for p in [24_000.0, 48_000.0, 96_000.0, 192_000.0, 384_000.0] {
            let e = m.strong_efficiency(atoms, VAC, TSTOP, p0, p);
            assert!(e <= 1.0 + 1e-9, "efficiency bounded: {e}");
            assert!(e <= last + 1e-9, "efficiency decreases with p");
            last = e;
        }
        let e_max = m.strong_efficiency(atoms, VAC, TSTOP, p0, 384_000.0);
        assert!(
            (0.75..=1.0).contains(&e_max),
            "32x strong scaling efficiency {e_max} should be high (paper: 0.85)"
        );
    }

    #[test]
    fn fig13_weak_scaling_shape() {
        // Paper Fig. 13: 128 M atoms per CG, 12,000 → 422,400 CGs, excellent
        // weak scaling.
        let m = ScalingModel::paper_573k();
        let per_cg = 128e6;
        let p0 = 12_000.0;
        for p in [24_000.0, 96_000.0, 422_400.0] {
            let e = m.weak_efficiency(per_cg, VAC, TSTOP, p0, p);
            assert!((0.85..=1.0).contains(&e), "weak efficiency at {p} CGs: {e}");
        }
        // Largest paper system: 54.067 T atoms at 422,400 CGs.
        let atoms = per_cg * 422_400.0;
        assert!((atoms - 54.0672e12).abs() / 54e12 < 0.01);
    }

    #[test]
    fn strong_time_decreases_with_more_cgs() {
        let m = ScalingModel::paper_573k();
        let t1 = m.strong_time(1.92e12, VAC, TSTOP, 1e-7, 12_000.0);
        let t2 = m.strong_time(1.92e12, VAC, TSTOP, 1e-7, 384_000.0);
        assert!(t2 < t1);
        // Speedup close to the CG ratio.
        let speedup = t1 / t2;
        assert!(speedup > 0.75 * 32.0, "speedup {speedup}");
    }

    #[test]
    fn compute_dominates_at_paper_density() {
        // Sanity: at 160 M atoms/CG the per-sector compute term must exceed
        // the halo term (otherwise the model predicts nonsense).
        let m = ScalingModel::paper_573k();
        let atoms_per_cg: f64 = 160e6;
        let compute = atoms_per_cg * VAC * m.hop_rate * TSTOP * m.t_event;
        let side = atoms_per_cg.cbrt();
        let halo = 8.0 * 6.0 * side * side * m.ghost_depth * m.t_halo_byte;
        assert!(compute > 5.0 * halo, "compute {compute} vs halo {halo}");
    }

    #[test]
    fn loopback_calibration_yields_sane_constants() {
        let c = CommCalibration::measure_loopback(8).unwrap();
        // A loopback round trip is microseconds, not zero and not seconds.
        assert!(c.t_sync > 0.0, "t_sync {}", c.t_sync);
        assert!(c.t_sync < 0.1, "t_sync {}", c.t_sync);
        // The floor guarantees a positive per-byte cost ≤ ~1 µs/byte.
        assert!(c.t_halo_byte >= 1.0e-10, "t_halo_byte {}", c.t_halo_byte);
        assert!(c.t_halo_byte < 1.0e-6, "t_halo_byte {}", c.t_halo_byte);
        // The recalibrated model keeps the paper's scaling *shape* —
        // bounded efficiency, monotone in p. (The absolute numbers shift
        // with the measured constants: a debug-build loopback round trip
        // is honest about syscall cost, not about a fat-tree fabric.)
        let m = ScalingModel::paper_573k().with_comm(c);
        let mut last = 1.0 + 1e-9;
        for p in [24_000.0, 96_000.0, 384_000.0] {
            let e = m.strong_efficiency(1.92e12, VAC, TSTOP, 12_000.0, p);
            assert!(e > 0.0 && e <= last, "strong efficiency at {p}: {e}");
            last = e;
        }
        let ew = m.weak_efficiency(128e6, VAC, TSTOP, 12_000.0, 422_400.0);
        assert!(ew > 0.0 && ew <= 1.0 + 1e-9, "weak efficiency {ew}");
    }

    #[test]
    fn with_comm_replaces_only_the_comm_constants() {
        let base = ScalingModel::paper_573k();
        let m = base.with_comm(CommCalibration {
            t_sync: 1.0e-5,
            t_halo_byte: 2.0e-10,
        });
        assert_eq!(m.t_sync, 1.0e-5);
        assert_eq!(m.t_halo_byte, 2.0e-10);
        assert_eq!(m.t_event, base.t_event);
        assert_eq!(m.hop_rate, base.hop_rate);
        assert_eq!(m.halo_bytes_per_site, base.halo_bytes_per_site);
        assert_eq!(m.ghost_depth, base.ghost_depth);
    }

    #[test]
    fn weak_time_is_flat_in_p_up_to_sync() {
        let m = ScalingModel::paper_573k();
        let t_small = m.weak_time(128e6, VAC, TSTOP, 1e-7, 12_000.0);
        let t_large = m.weak_time(128e6, VAC, TSTOP, 1e-7, 422_400.0);
        assert!((t_large - t_small) / t_small < 0.15, "near-flat weak curve");
    }
}
