//! Analytic scaling model for the paper-scale strong/weak scalability
//! figures (Figs. 12–13).
//!
//! We cannot run 27,456,000 cores; what we can do is (a) measure the real
//! sublattice algorithm on 1..N host threads and (b) extrapolate with a
//! calibrated computation/communication model. The model captures exactly
//! the terms that govern the sublattice algorithm's efficiency:
//!
//! * compute per sector ∝ local vacancies × hop rate × `t_stop`;
//! * halo exchange ∝ the block's surface × ghost depth (so it shrinks as
//!   `(V/p)^{2/3}` under strong scaling and stays constant under weak
//!   scaling);
//! * synchronisation ∝ `log₂ p` (tree barrier).

/// Calibrated cost coefficients of one core group (CG).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingModel {
    /// Seconds of CG compute per executed KMC event (vacancy-system refresh
    /// + propensity update); calibrated from a measured serial run.
    pub t_event: f64,
    /// Mean executed hops per vacancy per second of simulated time
    /// (≈ Σ_X Γ_X; temperature-dependent).
    pub hop_rate: f64,
    /// Seconds per halo byte (inverse network bandwidth per CG).
    pub t_halo_byte: f64,
    /// Barrier latency base, seconds.
    pub t_sync: f64,
    /// Atoms per lattice site surface unit — converts block surface area
    /// (in sites^(2/3) units) times ghost depth (sites) into halo bytes.
    pub halo_bytes_per_site: f64,
    /// Ghost depth in sites (≈ footprint in lattice layers).
    pub ghost_depth: f64,
}

impl ScalingModel {
    /// A parameterisation representative of the paper's setup: 573 K hop
    /// rates for Fe (E_a ≈ 0.65 eV), an event cost calibrated to our
    /// evaluator on the simulated CG, and interconnect constants typical of
    /// a fat-tree HPC network.
    pub fn paper_573k() -> Self {
        // Γ ≈ 8 · 6e12 · exp(-0.65 eV / kT(573 K)) ≈ 9e7 hops/s per vacancy.
        ScalingModel {
            t_event: 65e-6,
            hop_rate: 9.0e7,
            t_halo_byte: 1.0e-10, // 10 GB/s per CG
            t_sync: 5.0e-6,
            halo_bytes_per_site: 1.0, // one species byte
            ghost_depth: 5.0,
        }
    }

    /// Wall-clock seconds per simulated second for `p` CGs simulating
    /// `atoms_total` atoms with vacancy fraction `vac_frac`, sector interval
    /// `t_stop`.
    pub fn wall_per_sim_second(&self, atoms_total: f64, vac_frac: f64, t_stop: f64, p: f64) -> f64 {
        let cycles_per_sim_s = 1.0 / t_stop;
        let atoms_per_cg = atoms_total / p;
        let vac_per_cg = atoms_per_cg * vac_frac;
        // Per cycle (8 sectors):
        let compute = vac_per_cg * self.hop_rate * t_stop * self.t_event;
        // Halo: 6 faces × (block side)² sites × ghost depth, exchanged once
        // per sector (8× per cycle).
        let side = atoms_per_cg.cbrt();
        let halo_bytes = 6.0 * side * side * self.ghost_depth * self.halo_bytes_per_site;
        let comm = 8.0 * halo_bytes * self.t_halo_byte;
        let sync = 8.0 * self.t_sync * p.log2().max(1.0);
        cycles_per_sim_s * (compute + comm + sync)
    }

    /// Strong-scaling wall time (s) for a fixed problem, normalised workload
    /// `sim_time` seconds.
    pub fn strong_time(
        &self,
        atoms_total: f64,
        vac_frac: f64,
        t_stop: f64,
        sim_time: f64,
        p: f64,
    ) -> f64 {
        sim_time * self.wall_per_sim_second(atoms_total, vac_frac, t_stop, p)
    }

    /// Strong-scaling parallel efficiency of `p` CGs relative to `p0`.
    pub fn strong_efficiency(
        &self,
        atoms_total: f64,
        vac_frac: f64,
        t_stop: f64,
        p0: f64,
        p: f64,
    ) -> f64 {
        let t0 = self.wall_per_sim_second(atoms_total, vac_frac, t_stop, p0);
        let t = self.wall_per_sim_second(atoms_total, vac_frac, t_stop, p);
        (t0 * p0) / (t * p)
    }

    /// Weak-scaling wall time (s): `atoms_per_cg` is constant, the system
    /// grows with `p`.
    pub fn weak_time(
        &self,
        atoms_per_cg: f64,
        vac_frac: f64,
        t_stop: f64,
        sim_time: f64,
        p: f64,
    ) -> f64 {
        sim_time * self.wall_per_sim_second(atoms_per_cg * p, vac_frac, t_stop, p)
    }

    /// Weak-scaling efficiency of `p` CGs relative to `p0`.
    pub fn weak_efficiency(
        &self,
        atoms_per_cg: f64,
        vac_frac: f64,
        t_stop: f64,
        p0: f64,
        p: f64,
    ) -> f64 {
        let t0 = self.weak_time(atoms_per_cg, vac_frac, t_stop, 1.0, p0);
        let t = self.weak_time(atoms_per_cg, vac_frac, t_stop, 1.0, p);
        t0 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VAC: f64 = 8e-6; // 8×10⁻⁴ at.%
    const TSTOP: f64 = 2e-8;

    #[test]
    fn fig12_strong_scaling_shape() {
        // Paper Fig. 12: 1.92 T atoms, 12,000 → 384,000 CGs, ≥85 %
        // efficiency at the largest scale.
        let m = ScalingModel::paper_573k();
        let atoms = 1.92e12;
        let p0 = 12_000.0;
        let mut last = 1.0;
        for p in [24_000.0, 48_000.0, 96_000.0, 192_000.0, 384_000.0] {
            let e = m.strong_efficiency(atoms, VAC, TSTOP, p0, p);
            assert!(e <= 1.0 + 1e-9, "efficiency bounded: {e}");
            assert!(e <= last + 1e-9, "efficiency decreases with p");
            last = e;
        }
        let e_max = m.strong_efficiency(atoms, VAC, TSTOP, p0, 384_000.0);
        assert!(
            (0.75..=1.0).contains(&e_max),
            "32x strong scaling efficiency {e_max} should be high (paper: 0.85)"
        );
    }

    #[test]
    fn fig13_weak_scaling_shape() {
        // Paper Fig. 13: 128 M atoms per CG, 12,000 → 422,400 CGs, excellent
        // weak scaling.
        let m = ScalingModel::paper_573k();
        let per_cg = 128e6;
        let p0 = 12_000.0;
        for p in [24_000.0, 96_000.0, 422_400.0] {
            let e = m.weak_efficiency(per_cg, VAC, TSTOP, p0, p);
            assert!((0.85..=1.0).contains(&e), "weak efficiency at {p} CGs: {e}");
        }
        // Largest paper system: 54.067 T atoms at 422,400 CGs.
        let atoms = per_cg * 422_400.0;
        assert!((atoms - 54.0672e12).abs() / 54e12 < 0.01);
    }

    #[test]
    fn strong_time_decreases_with_more_cgs() {
        let m = ScalingModel::paper_573k();
        let t1 = m.strong_time(1.92e12, VAC, TSTOP, 1e-7, 12_000.0);
        let t2 = m.strong_time(1.92e12, VAC, TSTOP, 1e-7, 384_000.0);
        assert!(t2 < t1);
        // Speedup close to the CG ratio.
        let speedup = t1 / t2;
        assert!(speedup > 0.75 * 32.0, "speedup {speedup}");
    }

    #[test]
    fn compute_dominates_at_paper_density() {
        // Sanity: at 160 M atoms/CG the per-sector compute term must exceed
        // the halo term (otherwise the model predicts nonsense).
        let m = ScalingModel::paper_573k();
        let atoms_per_cg: f64 = 160e6;
        let compute = atoms_per_cg * VAC * m.hop_rate * TSTOP * m.t_event;
        let side = atoms_per_cg.cbrt();
        let halo = 8.0 * 6.0 * side * side * m.ghost_depth * m.t_halo_byte;
        assert!(compute > 5.0 * halo, "compute {compute} vs halo {halo}");
    }

    #[test]
    fn weak_time_is_flat_in_p_up_to_sync() {
        let m = ScalingModel::paper_573k();
        let t_small = m.weak_time(128e6, VAC, TSTOP, 1e-7, 12_000.0);
        let t_large = m.weak_time(128e6, VAC, TSTOP, 1e-7, 422_400.0);
        assert!((t_large - t_small) / t_small < 0.15, "near-flat weak curve");
    }
}
