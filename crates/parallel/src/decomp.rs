//! 3D domain decomposition and sector geometry (paper Fig. 2).

use crate::error::ParallelError;
use tensorkmc_lattice::{HalfVec, LocalIndexer, PeriodicBox, RegionGeometry};

/// A decomposition of a periodic box over a `gx × gy × gz` rank grid, each
/// block split into 8 octant sectors.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pbox: PeriodicBox,
    grid: (usize, usize, usize),
    /// Block extent per axis, half-grid units.
    block: (i32, i32, i32),
    /// Ghost width: the vacancy-system footprint extent.
    ghost: i32,
}

impl Decomposition {
    /// Builds and validates a decomposition for the given region geometry.
    pub fn new(
        pbox: PeriodicBox,
        grid: (usize, usize, usize),
        geom: &RegionGeometry,
    ) -> Result<Self, ParallelError> {
        let (ex, ey, ez) = pbox.extent();
        let ghost = geom
            .sites
            .iter()
            .flat_map(|s| [s.x.abs(), s.y.abs(), s.z.abs()])
            .max()
            .unwrap_or(0);
        let mut block = (0, 0, 0);
        for (axis, (extent, ranks)) in [(ex, grid.0), (ey, grid.1), (ez, grid.2)]
            .into_iter()
            .enumerate()
        {
            if ranks == 0 || extent % ranks as i32 != 0 || (extent / ranks as i32) % 2 != 0 {
                return Err(ParallelError::GridMismatch { extent, ranks });
            }
            let b = extent / ranks as i32;
            // Conflict freedom: concurrently active same-index octants of
            // adjacent ranks must be ≥ 2 footprints apart.
            let octant = b / 2;
            if octant < 2 * ghost {
                return Err(ParallelError::SectorTooNarrow {
                    octant,
                    required: 2 * ghost,
                });
            }
            match axis {
                0 => block.0 = b,
                1 => block.1 = b,
                _ => block.2 = b,
            }
        }
        Ok(Decomposition {
            pbox,
            grid,
            block,
            ghost,
        })
    }

    /// Picks a valid rank grid for `n_ranks` automatically: among every
    /// factorisation `gx·gy·gz = n_ranks` the most cubic one (smallest
    /// maximum extent, to minimise block surface and halo traffic) that
    /// passes [`Decomposition::new`]'s safety validation wins. Errors with
    /// the last validation failure when no factorisation fits the box —
    /// e.g. too many ranks for the octant-width constraint.
    pub fn choose_grid(
        pbox: PeriodicBox,
        n_ranks: usize,
        geom: &RegionGeometry,
    ) -> Result<Self, ParallelError> {
        if n_ranks == 0 {
            return Err(ParallelError::GridMismatch {
                extent: pbox.extent().0,
                ranks: 0,
            });
        }
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        for gx in 1..=n_ranks {
            if !n_ranks.is_multiple_of(gx) {
                continue;
            }
            let rem = n_ranks / gx;
            for gy in 1..=rem {
                if !rem.is_multiple_of(gy) {
                    continue;
                }
                triples.push((gx, gy, rem / gy));
            }
        }
        // Most cubic first; ties broken deterministically by the triple.
        triples.sort_by_key(|&(x, y, z)| (x.max(y).max(z), x, y));
        let mut last_err = None;
        for grid in triples {
            match Decomposition::new(pbox, grid, geom) {
                Ok(d) => return Ok(d),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one factorisation was tried"))
    }

    /// The underlying box.
    #[inline]
    pub fn pbox(&self) -> &PeriodicBox {
        &self.pbox
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.grid.0 * self.grid.1 * self.grid.2
    }

    /// The rank grid.
    #[inline]
    pub fn grid(&self) -> (usize, usize, usize) {
        self.grid
    }

    /// Ghost (halo) width in half-grid units.
    #[inline]
    pub fn ghost(&self) -> i32 {
        self.ghost
    }

    /// Grid coordinates of rank `r`.
    #[inline]
    pub fn rank_coords(&self, r: usize) -> (usize, usize, usize) {
        let (gy, gz) = (self.grid.1, self.grid.2);
        (r / (gy * gz), (r / gz) % gy, r % gz)
    }

    /// Rank id from grid coordinates (wrapped).
    #[inline]
    pub fn rank_at(&self, rx: i64, ry: i64, rz: i64) -> usize {
        let (gx, gy, gz) = (self.grid.0 as i64, self.grid.1 as i64, self.grid.2 as i64);
        let (rx, ry, rz) = (
            rx.rem_euclid(gx) as usize,
            ry.rem_euclid(gy) as usize,
            rz.rem_euclid(gz) as usize,
        );
        (rx * self.grid.1 + ry) * self.grid.2 + rz
    }

    /// Owned half-grid block `[lo, hi)` of rank `r`, in global coordinates.
    pub fn block(&self, r: usize) -> (HalfVec, HalfVec) {
        let (rx, ry, rz) = self.rank_coords(r);
        let lo = HalfVec::new(
            rx as i32 * self.block.0,
            ry as i32 * self.block.1,
            rz as i32 * self.block.2,
        );
        let hi = HalfVec::new(
            lo.x + self.block.0,
            lo.y + self.block.1,
            lo.z + self.block.2,
        );
        (lo, hi)
    }

    /// The ghost-aware local indexer of rank `r` (the Eq. 4 layout).
    pub fn indexer(&self, r: usize) -> LocalIndexer {
        let (lo, hi) = self.block(r);
        LocalIndexer::new(lo, hi, self.ghost).expect("validated decomposition")
    }

    /// Octant sector `s ∈ 0..8` of rank `r`: `[lo, hi)` in global
    /// coordinates. Bit 0/1/2 of `s` selects the upper half along x/y/z.
    pub fn octant(&self, r: usize, s: usize) -> (HalfVec, HalfVec) {
        debug_assert!(s < 8);
        let (lo, hi) = self.block(r);
        let mid = HalfVec::new(
            lo.x + self.block.0 / 2,
            lo.y + self.block.1 / 2,
            lo.z + self.block.2 / 2,
        );
        let pick = |bit: bool, lo, mid, hi| if bit { (mid, hi) } else { (lo, mid) };
        let (x0, x1) = pick(s & 1 != 0, lo.x, mid.x, hi.x);
        let (y0, y1) = pick(s & 2 != 0, lo.y, mid.y, hi.y);
        let (z0, z1) = pick(s & 4 != 0, lo.z, mid.z, hi.z);
        (HalfVec::new(x0, y0, z0), HalfVec::new(x1, y1, z1))
    }

    /// Owner rank of the (wrapped) site at `p`.
    pub fn owner_of(&self, p: HalfVec) -> usize {
        let w = self.pbox.wrap(p);
        self.rank_at(
            (w.x / self.block.0) as i64,
            (w.y / self.block.1) as i64,
            (w.z / self.block.2) as i64,
        )
    }

    /// The distinct neighbour ranks of `r` (ranks owning any of its ghost
    /// sites), excluding `r` itself.
    pub fn neighbors(&self, r: usize) -> Vec<usize> {
        let (rx, ry, rz) = self.rank_coords(r);
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let n = self.rank_at(rx as i64 + dx, ry as i64 + dy, rz as i64 + dz);
                    if n != r && !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// All valid bcc sites of rank `r`'s ghost region, in a deterministic
    /// order, as (unwrapped local coordinate, wrapped global coordinate)
    /// pairs.
    pub fn ghost_sites(&self, r: usize) -> Vec<(HalfVec, HalfVec)> {
        let (lo, hi) = self.block(r);
        let g = self.ghost;
        let mut out = Vec::new();
        for x in lo.x - g..hi.x + g {
            for y in lo.y - g..hi.y + g {
                for z in lo.z - g..hi.z + g {
                    let p = HalfVec::new(x, y, z);
                    if !p.is_bcc_site() {
                        continue;
                    }
                    let interior =
                        x >= lo.x && x < hi.x && y >= lo.y && y < hi.y && z >= lo.z && z < hi.z;
                    if !interior {
                        out.push((p, self.pbox.wrap(p)));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> RegionGeometry {
        RegionGeometry::new(2.87, 3.0).unwrap()
    }

    fn decomp(cells: i32, grid: (usize, usize, usize)) -> Decomposition {
        let pbox = PeriodicBox::new(cells, cells, cells, 2.87).unwrap();
        Decomposition::new(pbox, grid, &geom()).unwrap()
    }

    #[test]
    fn choose_grid_picks_the_most_cubic_valid_factorisation() {
        let pbox = PeriodicBox::new(20, 20, 20, 2.87).unwrap();
        assert_eq!(
            Decomposition::choose_grid(pbox, 8, &geom()).unwrap().grid(),
            (2, 2, 2)
        );
        assert_eq!(
            Decomposition::choose_grid(pbox, 2, &geom()).unwrap().grid(),
            (1, 1, 2)
        );
        assert_eq!(
            Decomposition::choose_grid(pbox, 1, &geom()).unwrap().grid(),
            (1, 1, 1)
        );
        // 7 does not divide the box extent on any axis — the helper must
        // fall through all factorisations and report, not panic.
        assert!(Decomposition::choose_grid(pbox, 7, &geom()).is_err());
        assert!(Decomposition::choose_grid(pbox, 0, &geom()).is_err());
    }

    #[test]
    fn blocks_tile_the_box() {
        let d = decomp(20, (2, 2, 1));
        let mut owned = std::collections::HashSet::new();
        for r in 0..d.n_ranks() {
            let (lo, hi) = d.block(r);
            for x in lo.x..hi.x {
                for y in lo.y..hi.y {
                    for z in lo.z..hi.z {
                        let p = HalfVec::new(x, y, z);
                        if p.is_bcc_site() {
                            assert!(owned.insert(p), "site owned twice");
                            assert_eq!(d.owner_of(p), r);
                        }
                    }
                }
            }
        }
        assert_eq!(owned.len(), d.pbox().n_sites());
    }

    #[test]
    fn octants_tile_each_block() {
        let d = decomp(20, (2, 1, 1));
        for r in 0..2 {
            let (lo, hi) = d.block(r);
            let mut seen = std::collections::HashSet::new();
            for s in 0..8 {
                let (olo, ohi) = d.octant(r, s);
                assert!(olo.x >= lo.x && ohi.x <= hi.x);
                for x in olo.x..ohi.x {
                    for y in olo.y..ohi.y {
                        for z in olo.z..ohi.z {
                            assert!(seen.insert((x, y, z)));
                        }
                    }
                }
            }
            let vol = ((hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z)) as usize;
            assert_eq!(seen.len(), vol);
        }
    }

    #[test]
    fn conflict_freedom_validated() {
        // Footprint for rcut = 3.0 Å is 5 half-units; octant must be ≥ 10,
        // so a block needs ≥ 20 half-units = 10 cells per rank per axis.
        let pbox = PeriodicBox::new(8, 8, 8, 2.87).unwrap();
        let err = Decomposition::new(pbox, (1, 1, 1), &geom()).unwrap_err();
        assert!(matches!(err, ParallelError::SectorTooNarrow { .. }));
        // 10 cells per rank is enough.
        decomp(10, (1, 1, 1));
    }

    #[test]
    fn uneven_grid_rejected() {
        let pbox = PeriodicBox::new(21, 20, 20, 2.87).unwrap();
        // 42 half-units over 2 ranks = 21 (odd) -> rejected.
        assert!(matches!(
            Decomposition::new(pbox, (2, 1, 1), &geom()),
            Err(ParallelError::GridMismatch { .. })
        ));
    }

    #[test]
    fn neighbors_of_a_rank() {
        let d = decomp(20, (2, 2, 1));
        // In a 2x2x1 grid with periodic wrap, every other rank is a
        // neighbour.
        let n = d.neighbors(0);
        assert_eq!(n, vec![1, 2, 3]);
    }

    #[test]
    fn ghost_sites_cover_halo_and_wrap() {
        let d = decomp(10, (1, 1, 1));
        let ghosts = d.ghost_sites(0);
        assert!(!ghosts.is_empty());
        for (local, wrapped) in &ghosts {
            // Local coordinate is outside the interior but inside the halo.
            let (lo, hi) = d.block(0);
            let inside = local.x >= lo.x
                && local.x < hi.x
                && local.y >= lo.y
                && local.y < hi.y
                && local.z >= lo.z
                && local.z < hi.z;
            assert!(!inside);
            // Wrapped coordinate is a valid box site.
            assert_eq!(*wrapped, d.pbox().wrap(*local));
        }
        // With a single rank every ghost wraps onto the rank itself.
        assert!(ghosts.iter().all(|(_, w)| d.owner_of(*w) == 0));
    }

    #[test]
    fn rank_coordinate_round_trip() {
        let d = decomp(20, (2, 2, 1));
        for r in 0..d.n_ranks() {
            let (rx, ry, rz) = d.rank_coords(r);
            assert_eq!(d.rank_at(rx as i64, ry as i64, rz as i64), r);
        }
    }

    #[test]
    fn indexer_matches_block_layout() {
        let d = decomp(10, (1, 1, 1));
        let ix = d.indexer(0);
        let (lo, hi) = d.block(0);
        use tensorkmc_lattice::SiteIndexer;
        assert_eq!(ix.interior(), (lo, hi));
        assert_eq!(ix.ghost_width(), d.ghost());
        assert_eq!(ix.n_local(), d.pbox().n_sites());
    }
}
