//! Parallel AKMC (paper §2.2): spatial domain decomposition plus the
//! Shim–Amar synchronous sublattice algorithm.
//!
//! MPI ranks are simulated by OS threads exchanging typed messages over
//! channels — the same communication structure (point-to-point halo
//! exchange, barriers) without the cluster. DESIGN.md documents the
//! substitution; the scaling harnesses combine measured thread-level runs
//! with the calibrated [`scaling::ScalingModel`] to reproduce the paper-scale
//! Figs. 12–13.
//!
//! * [`decomp`] — 3D decomposition of a periodic box into rank blocks, each
//!   split into 8 octant sectors; validates the geometric safety conditions
//!   (ghost width covers the vacancy-system footprint, octants are wide
//!   enough that concurrent same-index sectors can never touch a common
//!   site).
//! * [`comm`] — the [`comm::Transport`] abstraction plus the in-process
//!   backend (channels + abortable barrier). Every communication step is
//!   fallible: a dead rank surfaces as one attributable [`ParallelError`]
//!   instead of a panic cascade.
//! * [`tcp`] — the across-processes backend: length-prefixed binary frames
//!   over `std::net::TcpStream`, rendezvous through a coordinator, failure
//!   detection via receive timeouts and connection resets.
//! * [`checkpoint`] — cycle-boundary [`ParallelCheckpoint`]s: assembled
//!   identically (byte for byte) by both backends, loadable to resume the
//!   exact trajectory.
//! * [`sublattice`] — the synchronous sublattice driver: per sector, each
//!   rank evolves only the vacancies inside its active octant for `t_stop`,
//!   then pushes remote modifications to their owners and refreshes its halo
//!   (paper Fig. 2b). Generic over the transport, so threads-in-process and
//!   processes-across-hosts run the bit-identical trajectory.
//! * [`scaling`] — an analytic computation/communication model calibrated
//!   from measured single-rank costs, used to extrapolate strong/weak
//!   scaling to the paper's core counts.

pub mod checkpoint;
pub mod comm;
pub mod decomp;
pub mod error;
pub mod scaling;
pub mod sublattice;
pub mod tcp;

pub use checkpoint::{CheckpointWriter, ParallelCheckpoint, RankResume, RankState};
pub use comm::{build_fabric, build_fabric_with_timeout, Msg, RankComm, Transport};
pub use decomp::Decomposition;
pub use error::ParallelError;
pub use scaling::{CommCalibration, ScalingModel};
pub use sublattice::{
    collapse_errors, run_rank, run_sublattice, run_sublattice_full, run_sublattice_ranked,
    run_sublattice_telemetry, ParallelConfig, ParallelStats, RankOutput, RunOptions,
};
pub use tcp::{Coordinator, CoordinatorOptions, CoordinatorOutcome, TcpTransport, WorkerConfig};
