//! Parallel AKMC (paper §2.2): spatial domain decomposition plus the
//! Shim–Amar synchronous sublattice algorithm.
//!
//! MPI ranks are simulated by OS threads exchanging typed messages over
//! channels — the same communication structure (point-to-point halo
//! exchange, barriers) without the cluster. DESIGN.md documents the
//! substitution; the scaling harnesses combine measured thread-level runs
//! with the calibrated [`scaling::ScalingModel`] to reproduce the paper-scale
//! Figs. 12–13.
//!
//! * [`decomp`] — 3D decomposition of a periodic box into rank blocks, each
//!   split into 8 octant sectors; validates the geometric safety conditions
//!   (ghost width covers the vacancy-system footprint, octants are wide
//!   enough that concurrent same-index sectors can never touch a common
//!   site).
//! * [`comm`] — the rank-to-rank message fabric (channels + barrier).
//! * [`sublattice`] — the synchronous sublattice driver: per sector, each
//!   rank evolves only the vacancies inside its active octant for `t_stop`,
//!   then pushes remote modifications to their owners and refreshes its halo
//!   (paper Fig. 2b).
//! * [`scaling`] — an analytic computation/communication model calibrated
//!   from measured single-rank costs, used to extrapolate strong/weak
//!   scaling to the paper's core counts.

pub mod comm;
pub mod decomp;
pub mod error;
pub mod scaling;
pub mod sublattice;

pub use decomp::Decomposition;
pub use error::ParallelError;
pub use scaling::ScalingModel;
pub use sublattice::{
    run_sublattice, run_sublattice_ranked, run_sublattice_telemetry, ParallelConfig, ParallelStats,
};
