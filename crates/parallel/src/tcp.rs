//! TCP socket backend of the rank fabric (ROADMAP item 1): the same
//! Shim–Amar driver running as processes across hosts.
//!
//! Wire format: length-prefixed binary frames, `[u32 LE payload length]
//! [u8 tag][payload]`, over `std::net::TcpStream` — the reproduction's
//! stand-in for the paper §2.2 MPI layer (DESIGN.md §5h). Rendezvous is
//! coordinator-based: workers connect to `tensorkmc --coordinator <addr>`,
//! introduce themselves (HELLO), receive the full rank address table
//! (TABLE), then wire peer connections directly (lower rank connects,
//! higher rank accepts, identified by PEER_ID). Per-sector traffic
//! (MODS/HALO) flows rank-to-rank; barriers (BARRIER/RELEASE), state
//! gathers (STATE), and failure fan-out (ABORT) go through the
//! coordinator.
//!
//! Failure surfacing: every stream carries a read timeout and
//! `TCP_NODELAY`; a reset, EOF, or timeout on a peer stream becomes
//! [`ParallelError::PeerDisconnected`], and the coordinator — which sees a
//! dead worker's socket close immediately — broadcasts ABORT naming the
//! first lost rank and returns a single attributable
//! [`ParallelError::RankLost`], not a cascade.

use crate::checkpoint::{ParallelCheckpoint, RankState};
use crate::comm::{Msg, Transport};
use crate::decomp::Decomposition;
use crate::error::ParallelError;
use crate::sublattice::{ParallelConfig, ParallelStats};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tensorkmc_lattice::SiteArray;
use tensorkmc_telemetry::{keys, Counter, Registry};

/// Upper bound on a frame payload — a corrupted length word must not make
/// a rank try to allocate the universe.
pub const MAX_FRAME: usize = 1 << 30;

/// Delay between connection retries during rendezvous and peer wiring.
const RETRY_DELAY: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// One protocol frame. All integers are little-endian on the wire.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Frame {
    /// Worker → coordinator: introduce rank and advertise the peer port.
    Hello { rank: u32, ranks: u32, port: u16 },
    /// Coordinator → workers: `addrs[r]` is rank `r`'s peer listener.
    Table { addrs: Vec<String> },
    /// Worker → coordinator: reached barrier `epoch`.
    Barrier { epoch: u64 },
    /// Coordinator → workers: barrier `epoch` complete.
    Release { epoch: u64 },
    /// Coordinator → workers: `rank` is lost; unwind.
    Abort { rank: u32 },
    /// Rank → rank: remote modifications (owner-local slot, species byte).
    Mods(Vec<(u32, u8)>),
    /// Rank → rank: halo refresh bytes.
    Halo(Vec<u8>),
    /// Rank → rank: connection handshake naming the connecting rank.
    PeerId { rank: u32 },
    /// Worker → coordinator: cycle-boundary state for checkpoint/gather.
    State(RankState),
    /// Worker → coordinator: clean completion.
    Fin,
    /// Worker → coordinator: root-cause failure report.
    Failed { rank: u32, message: String },
}

const TAG_HELLO: u8 = 0;
const TAG_TABLE: u8 = 1;
const TAG_BARRIER: u8 = 2;
const TAG_RELEASE: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_MODS: u8 = 5;
const TAG_HALO: u8 = 6;
const TAG_PEER_ID: u8 = 7;
const TAG_STATE: u8 = 8;
const TAG_FIN: u8 = 9;
const TAG_FAILED: u8 = 10;

/// What went wrong reading a frame: the connection itself, or bytes that
/// arrived but do not decode (the latter is a root-cause [`ParallelError::
/// BadFrame`], the former a peer-disconnect symptom).
#[derive(Debug)]
pub(crate) enum FrameError {
    Io(io::Error),
    Decode(String),
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| format!("invalid utf-8: {e}"))
    }
    fn done(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Table { .. } => TAG_TABLE,
            Frame::Barrier { .. } => TAG_BARRIER,
            Frame::Release { .. } => TAG_RELEASE,
            Frame::Abort { .. } => TAG_ABORT,
            Frame::Mods(_) => TAG_MODS,
            Frame::Halo(_) => TAG_HALO,
            Frame::PeerId { .. } => TAG_PEER_ID,
            Frame::State(_) => TAG_STATE,
            Frame::Fin => TAG_FIN,
            Frame::Failed { .. } => TAG_FAILED,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { rank, ranks, port } => {
                put_u32(out, *rank);
                put_u32(out, *ranks);
                put_u16(out, *port);
            }
            Frame::Table { addrs } => {
                put_u32(out, addrs.len() as u32);
                for a in addrs {
                    put_str(out, a);
                }
            }
            Frame::Barrier { epoch } | Frame::Release { epoch } => put_u64(out, *epoch),
            Frame::Abort { rank } | Frame::PeerId { rank } => put_u32(out, *rank),
            Frame::Mods(entries) => {
                put_u32(out, entries.len() as u32);
                for (slot, sp) in entries {
                    put_u32(out, *slot);
                    out.push(*sp);
                }
            }
            Frame::Halo(bytes) => out.extend_from_slice(bytes),
            Frame::State(st) => {
                put_u64(out, st.cycle);
                out.push(st.is_final as u8);
                put_u32(out, st.rank as u32);
                put_u64(out, st.events);
                put_u64(out, st.halo_bytes);
                put_u64(out, st.remote_mods);
                put_u64(out, st.rng_state);
                put_u64(out, st.rng_inc);
                put_u32(out, st.interior.len() as u32);
                out.extend_from_slice(&st.interior);
            }
            Frame::Fin => {}
            Frame::Failed { rank, message } => {
                put_u32(out, *rank);
                put_str(out, message);
            }
        }
    }

    fn decode(tag: u8, payload: &[u8]) -> Result<Frame, String> {
        let mut c = Cur::new(payload);
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                rank: c.u32()?,
                ranks: c.u32()?,
                port: c.u16()?,
            },
            TAG_TABLE => {
                let n = c.u32()? as usize;
                let mut addrs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    addrs.push(c.str()?);
                }
                Frame::Table { addrs }
            }
            TAG_BARRIER => Frame::Barrier { epoch: c.u64()? },
            TAG_RELEASE => Frame::Release { epoch: c.u64()? },
            TAG_ABORT => Frame::Abort { rank: c.u32()? },
            TAG_MODS => {
                let n = c.u32()? as usize;
                if payload.len() != 4 + n * 5 {
                    return Err(format!(
                        "mods frame declares {n} entries but payload is {} bytes",
                        payload.len()
                    ));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let slot = c.u32()?;
                    let sp = c.u8()?;
                    entries.push((slot, sp));
                }
                Frame::Mods(entries)
            }
            TAG_HALO => Frame::Halo(payload.to_vec()),
            TAG_PEER_ID => Frame::PeerId { rank: c.u32()? },
            TAG_STATE => {
                let cycle = c.u64()?;
                let is_final = match c.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(format!("state frame: bad is_final byte {b}")),
                };
                let rank = c.u32()? as usize;
                let events = c.u64()?;
                let halo_bytes = c.u64()?;
                let remote_mods = c.u64()?;
                let rng_state = c.u64()?;
                let rng_inc = c.u64()?;
                let n = c.u32()? as usize;
                let interior = c.take(n)?.to_vec();
                Frame::State(RankState {
                    rank,
                    cycle,
                    is_final,
                    events,
                    halo_bytes,
                    remote_mods,
                    rng_state,
                    rng_inc,
                    interior,
                })
            }
            TAG_FIN => Frame::Fin,
            TAG_FAILED => Frame::Failed {
                rank: c.u32()?,
                message: c.str()?,
            },
            other => return Err(format!("unknown frame tag {other}")),
        };
        if tag != TAG_HALO {
            c.done()?;
        }
        Ok(frame)
    }
}

/// Shared wire-traffic counters ([`keys::PAR_TCP_BYTES`] and friends);
/// no-ops when constructed without a registry.
#[derive(Clone, Default)]
pub struct TcpCounters {
    bytes: Option<Arc<Counter>>,
    frames: Option<Arc<Counter>>,
    reconnects: Option<Arc<Counter>>,
}

impl TcpCounters {
    /// Counters resolved against `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        TcpCounters {
            bytes: Some(registry.counter(keys::PAR_TCP_BYTES)),
            frames: Some(registry.counter(keys::PAR_TCP_FRAMES)),
            reconnects: Some(registry.counter(keys::PAR_TCP_RECONNECTS)),
        }
    }

    fn frame(&self, wire_bytes: u64) {
        if let Some(c) = &self.bytes {
            c.add(wire_bytes);
        }
        if let Some(c) = &self.frames {
            c.inc();
        }
    }

    fn reconnect(&self) {
        if let Some(c) = &self.reconnects {
            c.inc();
        }
    }
}

/// Writes one frame (single `write_all`, so concurrent writers on *other*
/// streams can never interleave into this one).
pub(crate) fn write_frame(
    w: &mut impl Write,
    frame: &Frame,
    counters: &TcpCounters,
) -> io::Result<()> {
    let mut payload = Vec::new();
    frame.encode_payload(&mut payload);
    let mut buf = Vec::with_capacity(5 + payload.len());
    put_u32(&mut buf, payload.len() as u32);
    buf.push(frame.tag());
    buf.extend_from_slice(&payload);
    w.write_all(&buf)?;
    counters.frame(buf.len() as u64);
    Ok(())
}

/// Reads one frame; respects the stream's read timeout.
pub(crate) fn read_frame(r: &mut impl Read, counters: &TcpCounters) -> Result<Frame, FrameError> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let tag = head[4];
    if len > MAX_FRAME {
        return Err(FrameError::Decode(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    counters.frame(5 + len as u64);
    Frame::decode(tag, &payload).map_err(FrameError::Decode)
}

/// Connects with retries until `deadline` elapses; every attempt beyond the
/// first counts as a reconnect (workers race their peers' listeners).
fn connect_retry(addr: &str, deadline: Duration, counters: &TcpCounters) -> io::Result<TcpStream> {
    let start = Instant::now();
    let mut first = true;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if !first {
                    counters.reconnect();
                }
                first = false;
                if start.elapsed() >= deadline {
                    return Err(e);
                }
                thread::sleep(RETRY_DELAY);
            }
        }
    }
}

fn transport_err(rank: usize, detail: impl std::fmt::Display) -> ParallelError {
    ParallelError::Transport {
        rank,
        detail: detail.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Worker transport
// ---------------------------------------------------------------------------

/// The worker-process endpoint: direct peer streams for sector traffic,
/// a coordinator stream for barriers, state gathers, and failure fan-out.
pub struct TcpTransport {
    rank: usize,
    coord: TcpStream,
    peers: BTreeMap<usize, TcpStream>,
    epoch: u64,
    counters: TcpCounters,
    checkpoint_every: u64,
    finished: bool,
}

/// Everything needed to join a TCP fabric as one rank.
pub struct WorkerConfig<'a> {
    /// Coordinator rendezvous address (`host:port`).
    pub coordinator: &'a str,
    /// This worker's rank.
    pub rank: usize,
    /// Total ranks in the run.
    pub ranks: usize,
    /// This rank's neighbour ranks (from [`Decomposition::neighbors`]).
    pub neighbors: &'a [usize],
    /// Peer/coordinator receive timeout (also bounds rendezvous retries).
    pub recv_timeout: Duration,
    /// Submit mid-run state every this many cycles (0 = final gather only).
    pub checkpoint_every: u64,
    /// Telemetry registry for the wire counters.
    pub registry: Option<&'a Registry>,
}

impl TcpTransport {
    /// Performs the full rendezvous: connect to the coordinator, HELLO,
    /// receive the rank table, wire every peer stream.
    pub fn connect(cfg: &WorkerConfig<'_>) -> Result<Self, ParallelError> {
        let rank = cfg.rank;
        let counters = cfg
            .registry
            .map(TcpCounters::from_registry)
            .unwrap_or_default();
        let err = |d: String| transport_err(rank, d);

        let mut coord = connect_retry(cfg.coordinator, cfg.recv_timeout, &counters)
            .map_err(|e| err(format!("cannot reach coordinator {}: {e}", cfg.coordinator)))?;
        coord.set_nodelay(true).ok();
        coord
            .set_read_timeout(Some(cfg.recv_timeout))
            .map_err(|e| err(format!("set_read_timeout: {e}")))?;

        // Advertise a peer listener. Bind the wildcard matching the address
        // family we used to reach the coordinator; peers will dial us at the
        // IP the coordinator observed on our HELLO connection.
        let local = coord
            .local_addr()
            .map_err(|e| err(format!("local_addr: {e}")))?;
        let bind_ip = if local.is_ipv4() { "0.0.0.0" } else { "[::]" };
        let listener = TcpListener::bind(format!("{bind_ip}:0"))
            .map_err(|e| err(format!("cannot bind peer listener: {e}")))?;
        let port = listener
            .local_addr()
            .map_err(|e| err(format!("listener local_addr: {e}")))?
            .port();

        write_frame(
            &mut coord,
            &Frame::Hello {
                rank: rank as u32,
                ranks: cfg.ranks as u32,
                port,
            },
            &counters,
        )
        .map_err(|e| err(format!("hello: {e}")))?;

        let addrs = match read_frame(&mut coord, &counters) {
            Ok(Frame::Table { addrs }) => addrs,
            Ok(Frame::Abort { rank: dead }) => {
                return Err(ParallelError::RankLost {
                    rank: dead as usize,
                })
            }
            Ok(other) => return Err(err(format!("expected TABLE, got {other:?}"))),
            Err(FrameError::Io(e)) => return Err(err(format!("reading TABLE: {e}"))),
            Err(FrameError::Decode(d)) => {
                return Err(ParallelError::BadFrame {
                    rank,
                    peer: cfg.ranks,
                    detail: d,
                })
            }
        };
        if addrs.len() != cfg.ranks {
            return Err(err(format!(
                "TABLE has {} entries for {} ranks",
                addrs.len(),
                cfg.ranks
            )));
        }

        // Peer wiring: the lower rank of each pair dials, the higher
        // accepts; PEER_ID disambiguates accepted connections.
        let mut peers: BTreeMap<usize, TcpStream> = BTreeMap::new();
        for &p in cfg.neighbors.iter().filter(|&&p| p > rank) {
            let mut s = connect_retry(&addrs[p], cfg.recv_timeout, &counters)
                .map_err(|e| err(format!("cannot reach rank {p} at {}: {e}", addrs[p])))?;
            write_frame(&mut s, &Frame::PeerId { rank: rank as u32 }, &counters)
                .map_err(|e| err(format!("peer handshake with rank {p}: {e}")))?;
            peers.insert(p, s);
        }
        let expect_lower: Vec<usize> = cfg
            .neighbors
            .iter()
            .copied()
            .filter(|&p| p < rank)
            .collect();
        let accept_deadline = Instant::now() + cfg.recv_timeout;
        listener
            .set_nonblocking(true)
            .map_err(|e| err(format!("listener nonblocking: {e}")))?;
        while peers.len() < cfg.neighbors.len() {
            match listener.accept() {
                Ok((mut s, _)) => {
                    s.set_nonblocking(false).ok();
                    s.set_read_timeout(Some(cfg.recv_timeout)).ok();
                    let p = match read_frame(&mut s, &counters) {
                        Ok(Frame::PeerId { rank: p }) => p as usize,
                        Ok(other) => return Err(err(format!("expected PEER_ID, got {other:?}"))),
                        Err(FrameError::Io(e)) => {
                            return Err(err(format!("peer handshake read: {e}")))
                        }
                        Err(FrameError::Decode(d)) => {
                            return Err(ParallelError::BadFrame {
                                rank,
                                peer: cfg.ranks,
                                detail: d,
                            })
                        }
                    };
                    if !expect_lower.contains(&p) || peers.contains_key(&p) {
                        return Err(err(format!("unexpected peer connection from rank {p}")));
                    }
                    peers.insert(p, s);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= accept_deadline {
                        let missing: Vec<usize> = expect_lower
                            .iter()
                            .copied()
                            .filter(|p| !peers.contains_key(p))
                            .collect();
                        return Err(err(format!(
                            "timed out waiting for peer connections from ranks {missing:?}"
                        )));
                    }
                    thread::sleep(RETRY_DELAY);
                }
                Err(e) => return Err(err(format!("peer accept: {e}"))),
            }
        }
        for s in peers.values_mut() {
            s.set_nodelay(true).ok();
            s.set_read_timeout(Some(cfg.recv_timeout))
                .map_err(|e| err(format!("peer set_read_timeout: {e}")))?;
        }

        Ok(TcpTransport {
            rank,
            coord,
            peers,
            epoch: 0,
            counters,
            checkpoint_every: cfg.checkpoint_every,
            finished: false,
        })
    }

    /// Best-effort root-cause report to the coordinator: call with the
    /// error a failing rank is about to exit with, so the coordinator can
    /// name this rank's failure instead of just observing the hangup.
    /// Secondary (symptom) errors are not reported — the coordinator
    /// attributes those to the originally lost rank.
    pub fn report_failure(&mut self, err: &ParallelError) {
        if !err.is_secondary() {
            let _ = write_frame(
                &mut self.coord,
                &Frame::Failed {
                    rank: self.rank as u32,
                    message: err.to_string(),
                },
                &self.counters,
            );
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn peers(&self) -> Vec<usize> {
        self.peers.keys().copied().collect()
    }

    fn send(&mut self, to: usize, msg: Msg) -> Result<(), ParallelError> {
        let rank = self.rank;
        let stream = self.peers.get_mut(&to).ok_or(ParallelError::FabricConfig {
            detail: format!("rank {rank} is not wired to rank {to}"),
        })?;
        let frame = match msg {
            Msg::Mods(entries) => Frame::Mods(entries),
            Msg::Halo(bytes) => Frame::Halo(bytes),
        };
        write_frame(stream, &frame, &self.counters)
            .map_err(|_| ParallelError::PeerDisconnected { rank, peer: to })
    }

    fn recv(&mut self, from: usize) -> Result<Msg, ParallelError> {
        let rank = self.rank;
        let stream = self
            .peers
            .get_mut(&from)
            .ok_or(ParallelError::FabricConfig {
                detail: format!("rank {rank} is not wired to rank {from}"),
            })?;
        match read_frame(stream, &self.counters) {
            Ok(Frame::Mods(entries)) => Ok(Msg::Mods(entries)),
            Ok(Frame::Halo(bytes)) => Ok(Msg::Halo(bytes)),
            Ok(other) => Err(ParallelError::BadFrame {
                rank,
                peer: from,
                detail: format!("unexpected {other:?} on a peer stream"),
            }),
            Err(FrameError::Decode(detail)) => Err(ParallelError::BadFrame {
                rank,
                peer: from,
                detail,
            }),
            // EOF, reset, or read timeout: the peer is gone.
            Err(FrameError::Io(_)) => Err(ParallelError::PeerDisconnected { rank, peer: from }),
        }
    }

    fn barrier(&mut self) -> Result<(), ParallelError> {
        self.epoch += 1;
        let epoch = self.epoch;
        write_frame(&mut self.coord, &Frame::Barrier { epoch }, &self.counters)
            .map_err(|e| transport_err(self.rank, format!("coordinator lost (barrier): {e}")))?;
        match read_frame(&mut self.coord, &self.counters) {
            Ok(Frame::Release { epoch: e }) if e == epoch => Ok(()),
            Ok(Frame::Release { epoch: e }) => Err(transport_err(
                self.rank,
                format!("barrier release for epoch {e}, expected {epoch}"),
            )),
            Ok(Frame::Abort { rank }) => Err(ParallelError::RankLost {
                rank: rank as usize,
            }),
            Ok(other) => Err(transport_err(
                self.rank,
                format!("unexpected {other:?} from coordinator"),
            )),
            Err(FrameError::Io(e)) => Err(transport_err(
                self.rank,
                format!("coordinator lost (barrier wait): {e}"),
            )),
            Err(FrameError::Decode(d)) => Err(transport_err(
                self.rank,
                format!("undecodable coordinator frame: {d}"),
            )),
        }
    }

    fn wants_state(&self, cycle: u64, is_final: bool) -> bool {
        is_final || (self.checkpoint_every > 0 && cycle.is_multiple_of(self.checkpoint_every))
    }

    fn submit_state(&mut self, state: RankState) -> Result<(), ParallelError> {
        write_frame(&mut self.coord, &Frame::State(state), &self.counters)
            .map_err(|e| transport_err(self.rank, format!("coordinator lost (state): {e}")))
    }

    fn finish(&mut self) -> Result<(), ParallelError> {
        write_frame(&mut self.coord, &Frame::Fin, &self.counters)
            .map_err(|e| transport_err(self.rank, format!("coordinator lost (fin): {e}")))?;
        self.finished = true;
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Closing the sockets *is* the failure signal: peers fail their next
        // read, the coordinator's reader sees EOF and aborts the run. An
        // explicit shutdown makes that prompt even with buffered data.
        if !self.finished {
            let _ = self.coord.shutdown(std::net::Shutdown::Both);
            for s in self.peers.values() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// What the coordinator hands back after a clean run.
pub struct CoordinatorOutcome {
    /// The assembled final lattice.
    pub lattice: SiteArray,
    /// Run statistics, identical to the in-process backend's.
    pub stats: ParallelStats,
    /// The final checkpoint (also written to disk when a path was given).
    pub checkpoint: ParallelCheckpoint,
}

/// Coordinator-side options.
pub struct CoordinatorOptions<'a> {
    /// Write each completed checkpoint cycle (and the final state) here.
    pub checkpoint_path: Option<PathBuf>,
    /// How long to wait for worker connections and control frames.
    pub recv_timeout: Duration,
    /// Telemetry registry for the wire counters.
    pub registry: Option<&'a Registry>,
}

/// The rendezvous + control endpoint of a multi-process run. Bind first
/// (so the listen port is known and printable), then [`Coordinator::run`].
pub struct Coordinator {
    listener: TcpListener,
}

/// Events the per-worker reader threads feed the control loop.
enum Event {
    Barrier(usize, u64),
    State(Box<RankState>),
    Fin(usize),
    Failed(usize, String),
    /// Connection lost (EOF/reset/timeout) — attribution happens in the
    /// control loop, which knows whether the worker already finished.
    Dead(usize),
    /// Bytes arrived but do not decode.
    Garbled(usize, String),
}

impl Coordinator {
    /// Binds the rendezvous listener.
    pub fn bind(addr: &str) -> Result<Self, ParallelError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| transport_err(usize::MAX, format!("cannot bind {addr}: {e}")))?;
        Ok(Coordinator { listener })
    }

    /// The bound rendezvous address (workers dial this).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the control loop to completion: accept `n_ranks` HELLOs,
    /// broadcast the address table, mediate barriers, collect state
    /// submissions into checkpoints, and assemble the final outcome.
    ///
    /// A worker that vanishes (socket EOF/reset) before its FIN triggers an
    /// ABORT broadcast and a single [`ParallelError::RankLost`] naming it; a
    /// worker that reports a root-cause failure (FAILED frame) is surfaced
    /// with its own message.
    pub fn run(
        self,
        decomp: &Decomposition,
        config: &ParallelConfig,
        opts: &CoordinatorOptions<'_>,
    ) -> Result<CoordinatorOutcome, ParallelError> {
        let n = decomp.n_ranks();
        // The coordinator is not a rank; it reports as pseudo-rank n.
        let me = n;
        let counters = opts
            .registry
            .map(TcpCounters::from_registry)
            .unwrap_or_default();
        let err = |d: String| transport_err(me, d);
        let n_cycles = (config.total_time / config.t_stop).ceil() as u64;

        // Phase 1: accept one HELLO per rank.
        self.listener
            .set_nonblocking(true)
            .map_err(|e| err(format!("listener nonblocking: {e}")))?;
        let mut conns: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut addrs: Vec<String> = vec![String::new(); n];
        let deadline = Instant::now() + opts.recv_timeout;
        let mut connected = 0usize;
        while connected < n {
            match self.listener.accept() {
                Ok((mut s, peer_addr)) => {
                    s.set_nonblocking(false).ok();
                    s.set_nodelay(true).ok();
                    s.set_read_timeout(Some(opts.recv_timeout)).ok();
                    match read_frame(&mut s, &counters) {
                        Ok(Frame::Hello { rank, ranks, port }) => {
                            let rank = rank as usize;
                            if ranks as usize != n {
                                return Err(err(format!(
                                    "rank {rank} expects {ranks} ranks, run has {n}"
                                )));
                            }
                            if rank >= n || conns[rank].is_some() {
                                return Err(err(format!(
                                    "duplicate or out-of-range HELLO from rank {rank}"
                                )));
                            }
                            addrs[rank] = format!("{}:{port}", peer_addr.ip());
                            conns[rank] = Some(s);
                            connected += 1;
                        }
                        Ok(other) => return Err(err(format!("expected HELLO, got {other:?}"))),
                        Err(FrameError::Io(e)) => return Err(err(format!("reading HELLO: {e}"))),
                        Err(FrameError::Decode(d)) => {
                            return Err(ParallelError::BadFrame {
                                rank: me,
                                peer: me,
                                detail: format!("undecodable HELLO: {d}"),
                            })
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(err(format!("timed out: {connected}/{n} workers connected")));
                    }
                    thread::sleep(RETRY_DELAY);
                }
                Err(e) => return Err(err(format!("accept: {e}"))),
            }
        }
        let mut conns: Vec<TcpStream> = conns.into_iter().map(Option::unwrap).collect();

        // Phase 2: broadcast the table; workers wire each other directly.
        let table = Frame::Table {
            addrs: addrs.clone(),
        };
        for s in conns.iter_mut() {
            write_frame(s, &table, &counters).map_err(|e| err(format!("sending TABLE: {e}")))?;
        }

        // Phase 3: reader thread per worker feeding the control loop.
        let (tx, rx) = mpsc::channel::<Event>();
        let mut readers = Vec::new();
        for (r, s) in conns.iter().enumerate() {
            let mut rs = s
                .try_clone()
                .map_err(|e| err(format!("clone rank {r} stream: {e}")))?;
            let tx = tx.clone();
            let counters = counters.clone();
            readers.push(thread::spawn(move || loop {
                match read_frame(&mut rs, &counters) {
                    Ok(Frame::Barrier { epoch }) => {
                        let _ = tx.send(Event::Barrier(r, epoch));
                    }
                    Ok(Frame::State(st)) => {
                        if st.rank != r {
                            let _ = tx.send(Event::Garbled(
                                r,
                                format!("state frame claims rank {}, stream is rank {r}", st.rank),
                            ));
                            break;
                        }
                        let _ = tx.send(Event::State(Box::new(st)));
                    }
                    Ok(Frame::Fin) => {
                        let _ = tx.send(Event::Fin(r));
                        break;
                    }
                    Ok(Frame::Failed { message, .. }) => {
                        let _ = tx.send(Event::Failed(r, message));
                        break;
                    }
                    Ok(other) => {
                        let _ = tx.send(Event::Garbled(r, format!("unexpected {other:?}")));
                        break;
                    }
                    Err(FrameError::Io(_)) => {
                        let _ = tx.send(Event::Dead(r));
                        break;
                    }
                    Err(FrameError::Decode(d)) => {
                        let _ = tx.send(Event::Garbled(r, d));
                        break;
                    }
                }
            }));
        }
        drop(tx);

        // Phase 4: the control loop.
        let abort = |conns: &mut [TcpStream], dead: usize, counters: &TcpCounters| {
            for (r, s) in conns.iter_mut().enumerate() {
                if r != dead {
                    let _ = write_frame(s, &Frame::Abort { rank: dead as u32 }, counters);
                }
            }
        };
        // Workers can be an entire compute cycle apart from the coordinator's
        // point of view; allow several receive windows before declaring the
        // whole fabric hung.
        let ctrl_timeout = opts.recv_timeout.saturating_mul(4);
        let mut fin = vec![false; n];
        let mut barrier_counts: HashMap<u64, BTreeSet<usize>> = HashMap::new();
        let mut cycle_states: HashMap<u64, Vec<Option<RankState>>> = HashMap::new();
        let mut final_states: Vec<Option<RankState>> = (0..n).map(|_| None).collect();
        let result = loop {
            if fin.iter().all(|&f| f) {
                break Ok(());
            }
            let ev = match rx.recv_timeout(ctrl_timeout) {
                Ok(ev) => ev,
                Err(_) => break Err(err("control loop timed out waiting for workers".into())),
            };
            match ev {
                Event::Barrier(r, epoch) => {
                    // Keyed by rank so a duplicate frame can never release
                    // the barrier early.
                    let arrived = barrier_counts.entry(epoch).or_default();
                    arrived.insert(r);
                    if arrived.len() == n {
                        barrier_counts.remove(&epoch);
                        let release = Frame::Release { epoch };
                        let mut dead = None;
                        for (r, s) in conns.iter_mut().enumerate() {
                            if write_frame(s, &release, &counters).is_err() {
                                dead = Some(r);
                            }
                        }
                        if let Some(r) = dead {
                            abort(&mut conns, r, &counters);
                            break Err(ParallelError::RankLost { rank: r });
                        }
                    }
                }
                Event::State(st) => {
                    let st = *st;
                    let rank = st.rank;
                    if st.is_final {
                        final_states[rank] = Some(st);
                    } else {
                        let cycle = st.cycle;
                        let slots = cycle_states
                            .entry(cycle)
                            .or_insert_with(|| (0..n).map(|_| None).collect());
                        slots[rank] = Some(st);
                        if slots.iter().all(Option::is_some) {
                            let states: Vec<RankState> = cycle_states
                                .remove(&cycle)
                                .unwrap()
                                .into_iter()
                                .map(Option::unwrap)
                                .collect();
                            let ck = match ParallelCheckpoint::assemble(
                                decomp, config, cycle, &states,
                            ) {
                                Ok(ck) => ck,
                                Err(e) => break Err(e),
                            };
                            if let Some(path) = &opts.checkpoint_path {
                                if let Err(e) = ck.write(path) {
                                    break Err(err(format!(
                                        "cannot write checkpoint {}: {e}",
                                        path.display()
                                    )));
                                }
                            }
                        }
                    }
                }
                Event::Fin(r) => fin[r] = true,
                Event::Failed(r, message) => {
                    abort(&mut conns, r, &counters);
                    break Err(transport_err(r, format!("rank failed: {message}")));
                }
                Event::Dead(r) => {
                    if !fin[r] {
                        abort(&mut conns, r, &counters);
                        break Err(ParallelError::RankLost { rank: r });
                    }
                }
                Event::Garbled(r, detail) => {
                    abort(&mut conns, r, &counters);
                    break Err(ParallelError::BadFrame {
                        rank: me,
                        peer: r,
                        detail,
                    });
                }
            }
        };
        // Unblock and join the readers regardless of outcome.
        for s in conns.iter() {
            let _ = s.shutdown(std::net::Shutdown::Read);
        }
        for h in readers {
            let _ = h.join();
        }
        result?;

        // Phase 5: assemble the final outcome from the end-of-run gather.
        let states: Vec<RankState> = final_states
            .into_iter()
            .enumerate()
            .map(|(r, st)| {
                st.ok_or_else(|| err(format!("rank {r} finished without a final state")))
            })
            .collect::<Result<_, _>>()?;
        let checkpoint = ParallelCheckpoint::assemble(decomp, config, n_cycles, &states)?;
        if let Some(path) = &opts.checkpoint_path {
            checkpoint
                .write(path)
                .map_err(|e| err(format!("cannot write checkpoint {}: {e}", path.display())))?;
        }
        let stats = ParallelStats {
            cycles: n_cycles,
            time: (n_cycles as f64 * config.t_stop).min(config.total_time),
            rank_events: states.iter().map(|s| s.events).collect(),
            halo_bytes: states.iter().map(|s| s.halo_bytes).sum(),
            remote_mods: states.iter().map(|s| s.remote_mods).sum(),
        };
        Ok(CoordinatorOutcome {
            lattice: checkpoint.lattice.clone(),
            stats,
            checkpoint,
        })
    }
}

/// Resolves `addr` enough to tell the caller it is well-formed (used by the
/// CLI before forking work off it).
pub fn validate_addr(addr: &str) -> Result<(), ParallelError> {
    addr.to_socket_addrs()
        .map(|_| ())
        .map_err(|e| transport_err(usize::MAX, format!("invalid address {addr}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let counters = TcpCounters::default();
        let mut buf = Vec::new();
        write_frame(&mut buf, &f, &counters).unwrap();
        let mut r = &buf[..];
        match read_frame(&mut r, &counters) {
            Ok(back) => assert_eq!(back, f),
            Err(FrameError::Decode(d)) => panic!("decode failed: {d}"),
            Err(FrameError::Io(e)) => panic!("io failed: {e}"),
        }
        assert!(r.is_empty(), "frame consumed exactly");
    }

    #[test]
    fn frame_codec_round_trips_every_variant() {
        roundtrip(Frame::Hello {
            rank: 3,
            ranks: 8,
            port: 40123,
        });
        roundtrip(Frame::Table {
            addrs: vec!["127.0.0.1:1".into(), "10.0.0.2:65535".into()],
        });
        roundtrip(Frame::Barrier { epoch: 7 });
        roundtrip(Frame::Release { epoch: u64::MAX });
        roundtrip(Frame::Abort { rank: 2 });
        roundtrip(Frame::Mods(vec![(0, 0), (123456, 2), (u32::MAX, 1)]));
        roundtrip(Frame::Mods(vec![]));
        roundtrip(Frame::Halo(vec![0, 1, 2, 2, 1, 0]));
        roundtrip(Frame::Halo(vec![]));
        roundtrip(Frame::PeerId { rank: 5 });
        roundtrip(Frame::State(RankState {
            rank: 1,
            cycle: 9,
            is_final: true,
            events: 1234,
            halo_bytes: 88,
            remote_mods: 7,
            rng_state: 0x0123_4567_89AB_CDEF,
            rng_inc: 0xFEDC_BA98_7654_3211,
            interior: vec![0, 1, 2, 0],
        }));
        roundtrip(Frame::Fin);
        roundtrip(Frame::Failed {
            rank: 4,
            message: "rank KMC failure: negative rate".into(),
        });
    }

    #[test]
    fn truncated_and_garbage_frames_are_decode_errors() {
        let counters = TcpCounters::default();
        // Truncated payload: header promises more than arrives -> Io.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Barrier { epoch: 1 }, &counters).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut &buf[..], &counters),
            Err(FrameError::Io(_))
        ));
        // Unknown tag -> Decode.
        let bad = [0u8, 0, 0, 0, 99];
        assert!(matches!(
            read_frame(&mut &bad[..], &counters),
            Err(FrameError::Decode(_))
        ));
        // Oversized length word -> Decode, no allocation attempt.
        let huge = [(MAX_FRAME as u32 + 1).to_le_bytes().as_slice(), &[TAG_FIN]].concat();
        assert!(matches!(
            read_frame(&mut &huge[..], &counters),
            Err(FrameError::Decode(_))
        ));
        // Mods length lying about entry count -> Decode.
        let mut payload = Vec::new();
        put_u32(&mut payload, 10); // declares 10 entries, provides none
        let mut framed = Vec::new();
        put_u32(&mut framed, payload.len() as u32);
        framed.push(TAG_MODS);
        framed.extend_from_slice(&payload);
        assert!(matches!(
            read_frame(&mut &framed[..], &counters),
            Err(FrameError::Decode(_))
        ));
    }

    #[test]
    fn wire_counters_count_frames_and_bytes() {
        let registry = Registry::new();
        let counters = TcpCounters::from_registry(&registry);
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Halo(vec![1; 11]), &counters).unwrap();
        read_frame(&mut &buf[..], &counters).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(keys::PAR_TCP_FRAMES), Some(2));
        assert_eq!(snap.counter(keys::PAR_TCP_BYTES), Some(2 * (5 + 11)));
    }

    #[test]
    fn validate_addr_accepts_loopback_rejects_garbage() {
        validate_addr("127.0.0.1:0").unwrap();
        assert!(validate_addr("not an address").is_err());
    }

    // Full fabric tests (rendezvous, barriers, parity, fault injection)
    // live in sublattice.rs's test module and tests/parallel_transport.rs,
    // where a decomposition and evaluator are available.
}
