//! Property tests of the decomposition's geometric guarantees
//! (compat::prop harness).

use tensorkmc_compat::prop::check_n;
use tensorkmc_compat::rng::Rng;
use tensorkmc_lattice::{HalfVec, PeriodicBox, RegionGeometry};
use tensorkmc_parallel::Decomposition;

fn geom() -> RegionGeometry {
    RegionGeometry::new(2.87, 3.0).unwrap()
}

#[test]
fn ownership_partitions_every_site() {
    check_n(24, |g| {
        let cx = g.gen_range(1usize..3);
        let cy = g.gen_range(1usize..3);
        let cz = g.gen_range(1usize..3);
        let scale = g.gen_range(10i32..16);
        let geometry = geom();
        let pbox = PeriodicBox::new(
            scale * cx as i32,
            scale * cy as i32,
            scale * cz as i32,
            2.87,
        )
        .unwrap();
        let Ok(d) = Decomposition::new(pbox, (cx, cy, cz), &geometry) else {
            // Some shapes legitimately fail validation (odd blocks, narrow
            // octants); that is not what this property tests.
            return;
        };
        // Owners tile the box: every site has exactly one owner, consistent
        // with the block bounds.
        let mut counts = vec![0usize; d.n_ranks()];
        for i in 0..pbox.n_sites() {
            let p = pbox.coords(i);
            let r = d.owner_of(p);
            counts[r] += 1;
            let (lo, hi) = d.block(r);
            assert!(p.x >= lo.x && p.x < hi.x);
            assert!(p.y >= lo.y && p.y < hi.y);
            assert!(p.z >= lo.z && p.z < hi.z);
        }
        let per_rank = pbox.n_sites() / d.n_ranks();
        assert!(counts.iter().all(|&c| c == per_rank), "equal blocks");
    });
}

#[test]
fn concurrent_sectors_never_share_a_writable_site() {
    check_n(24, |g| {
        // The conflict-freedom theorem behind the sublattice algorithm: for
        // any sector index, the write-reach (octant dilated by the footprint)
        // of different ranks must be disjoint.
        let sector = g.gen_range(0usize..8);
        let ranks_x = g.gen_range(1usize..3);
        let geometry = geom();
        let pbox = PeriodicBox::new(10 * ranks_x as i32, 10, 10, 2.87).unwrap();
        let Ok(d) = Decomposition::new(pbox, (ranks_x, 1, 1), &geometry) else {
            return;
        };
        if d.n_ranks() < 2 {
            return;
        }
        let footprint: i32 = geometry
            .sites
            .iter()
            .flat_map(|s| [s.x.abs(), s.y.abs(), s.z.abs()])
            .max()
            .unwrap();
        // Collect each rank's write-reach along x (the split axis), wrapped.
        let (ex, _, _) = pbox.extent();
        let mut reach: Vec<Vec<bool>> = vec![vec![false; ex as usize]; d.n_ranks()];
        for (r, row) in reach.iter_mut().enumerate() {
            let (lo, hi) = d.octant(r, sector);
            for x in lo.x - footprint..hi.x + footprint {
                row[x.rem_euclid(ex) as usize] = true;
            }
        }
        for a in 0..d.n_ranks() {
            for b in a + 1..d.n_ranks() {
                let overlap = (0..ex as usize).any(|x| reach[a][x] && reach[b][x]);
                assert!(
                    !overlap,
                    "sector {sector} of ranks {a} and {b} can write the same x-plane"
                );
            }
        }
    });
}

#[test]
fn ghost_sites_cover_exactly_the_halo() {
    check_n(24, |g| {
        let cells = g.gen_range(10i32..14);
        let geometry = geom();
        let pbox = PeriodicBox::new(cells, cells, cells, 2.87).unwrap();
        let Ok(d) = Decomposition::new(pbox, (1, 1, 1), &geometry) else {
            return;
        };
        let ghosts = d.ghost_sites(0);
        // Count valid halo sites directly.
        let (lo, hi) = d.block(0);
        let gw = d.ghost();
        let mut expect = 0;
        for x in lo.x - gw..hi.x + gw {
            for y in lo.y - gw..hi.y + gw {
                for z in lo.z - gw..hi.z + gw {
                    let p = HalfVec::new(x, y, z);
                    let interior =
                        x >= lo.x && x < hi.x && y >= lo.y && y < hi.y && z >= lo.z && z < hi.z;
                    if p.is_bcc_site() && !interior {
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(ghosts.len(), expect);
    });
}
