//! Stress the sublattice driver's boundary machinery: vacancies seeded
//! directly on rank boundaries force hops that write into neighbours' halos,
//! exercising the remote-modification and halo-refresh phases every sector.

use std::sync::Arc;
use tensorkmc_compat::rng::StdRng;
use tensorkmc_core::RateLaw;
use tensorkmc_lattice::{HalfVec, PeriodicBox, RegionGeometry, SiteArray, Species};
use tensorkmc_nnp::{ModelConfig, NnpModel};
use tensorkmc_operators::NnpDirectEvaluator;
use tensorkmc_parallel::{run_sublattice, Decomposition, ParallelConfig};

fn model() -> NnpModel {
    let fs = tensorkmc_potential::FeatureSet::small(4);
    let cfg = ModelConfig {
        channels: vec![fs.n_features(), 16, 1],
        rcut: 3.0,
    };
    let mut m = NnpModel::new(fs, &cfg, &mut StdRng::seed_from_u64(21));
    m.norm.mean = vec![7.0, 7.0, 7.0, 7.0, 0.5, 0.5, 0.5, 0.5];
    m.norm.std = vec![2.0; 8];
    m.energy_scale = 0.2;
    m
}

/// Pure-Fe box with vacancies planted exactly on the x-boundary between the
/// two ranks of a (2,1,1) grid, plus a stripe of Cu beside them so species
/// transport crosses the boundary too.
fn boundary_seeded_lattice(cells: i32) -> SiteArray {
    let pbox = PeriodicBox::new(cells, cells, cells, 2.87).unwrap();
    let mut l = SiteArray::pure_iron(pbox);
    let xb = cells; // half-grid x of the internal rank boundary
    for (k, z) in (0..cells).step_by(3).enumerate() {
        let y = (2 * ((k as i32 * 5) % cells)) % (2 * cells);
        let p = HalfVec::new(xb, (y | 1) - 1 + (xb & 1), 2 * z + (xb & 1));
        // Ensure valid parity: pick the site with matching parity class.
        let p = if p.is_bcc_site() {
            p
        } else {
            HalfVec::new(p.x, p.y + 1, p.z + 1)
        };
        l.set_at(p, Species::Vacancy);
        let q = pbox.wrap(p + HalfVec::new(1, 1, 1));
        if l.at(q) == Species::Fe {
            l.set_at(q, Species::Cu);
        }
    }
    l
}

#[test]
fn boundary_vacancies_survive_many_sector_cycles() {
    let m = model();
    let geom = Arc::new(RegionGeometry::new(2.87, 3.0).unwrap());
    let lattice = boundary_seeded_lattice(20);
    let before = lattice.census();
    assert!(before.2 >= 4, "several vacancies on the boundary");

    let decomp = Decomposition::new(*lattice.pbox(), (2, 1, 1), &geom).unwrap();
    let cfg = ParallelConfig {
        law: RateLaw::at_temperature(900.0), // hot: many hops per sector
        t_stop: 2e-8,
        total_time: 6e-7,
        seed: 5,
    };
    let (out, stats) = run_sublattice(
        &lattice,
        Arc::clone(&geom),
        &decomp,
        |_r| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
        &cfg,
    )
    .unwrap();

    assert_eq!(out.census(), before, "species conserved across boundaries");
    assert!(
        stats.total_events() > 50,
        "boundary vacancies actually moved"
    );
    assert!(
        stats.remote_mods > 0,
        "boundary hops must generate remote modifications"
    );
    // Vacancy count per final scan must equal the tracked census.
    assert_eq!(out.find_all(Species::Vacancy).len(), before.2);
}

#[test]
fn remote_modifications_agree_with_single_rank_truth() {
    // The same boundary-seeded system run on 1 rank and on 2 ranks must
    // agree on all conserved quantities (trajectories differ by design —
    // independent RNG streams — but the physics bookkeeping cannot).
    let m = model();
    let geom = Arc::new(RegionGeometry::new(2.87, 3.0).unwrap());
    let lattice = boundary_seeded_lattice(20);
    let before = lattice.census();
    for grid in [(1usize, 1usize, 1usize), (2, 1, 1), (2, 2, 1)] {
        let decomp = Decomposition::new(*lattice.pbox(), grid, &geom).unwrap();
        let cfg = ParallelConfig {
            law: RateLaw::at_temperature(900.0),
            t_stop: 2e-8,
            total_time: 2e-7,
            seed: 9,
        };
        let (out, _) = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_r| NnpDirectEvaluator::new(&m, Arc::clone(&geom)),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.census(), before, "grid {grid:?}");
    }
}
