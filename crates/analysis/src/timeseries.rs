//! Time series of cluster observables along a trajectory.

use crate::clusters::ClusterReport;

/// One sampled point of the precipitation observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservableRow {
    /// Simulated time, s.
    pub time: f64,
    /// Executed KMC steps at sampling.
    pub steps: u64,
    /// Isolated solute atoms (Fig. 8's y-axis).
    pub isolated: usize,
    /// Number of clusters.
    pub n_clusters: usize,
    /// Largest cluster size (`C_max`).
    pub max_size: usize,
    /// Number density of clusters with ≥2 atoms, 1/m³.
    pub density: f64,
}

/// The header line of the CSV export (with trailing newline).
pub const CSV_HEADER: &str = "time_s,steps,isolated,n_clusters,max_size,density_per_m3\n";

impl ObservableRow {
    /// One sample built from a cluster report (what
    /// [`ObservableLog::push`] appends).
    pub fn from_report(time: f64, steps: u64, report: &ClusterReport, volume_m3: f64) -> Self {
        ObservableRow {
            time,
            steps,
            isolated: report.isolated,
            n_clusters: report.n_clusters,
            max_size: report.max_size,
            density: report.number_density(volume_m3, 2),
        }
    }

    /// The row's CSV rendering, without a trailing newline — byte-for-byte
    /// the line [`ObservableLog::to_csv`] emits, so incremental writers
    /// (the job server's per-chunk persistence) stay bit-identical to the
    /// batch export.
    pub fn to_csv_line(&self) -> String {
        format!(
            "{:e},{},{},{},{},{:e}",
            self.time, self.steps, self.isolated, self.n_clusters, self.max_size, self.density
        )
    }
}

/// An append-only observable log with CSV export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservableLog {
    /// The sampled rows, in time order.
    pub rows: Vec<ObservableRow>,
}

impl ObservableLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample from a cluster report.
    pub fn push(&mut self, time: f64, steps: u64, report: &ClusterReport, volume_m3: f64) {
        self.rows
            .push(ObservableRow::from_report(time, steps, report, volume_m3));
    }

    /// CSV rendering with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        for r in &self.rows {
            out.push_str(&r.to_csv_line());
            out.push('\n');
        }
        out
    }

    /// Whether the isolated count is non-increasing over the trajectory
    /// tail — the qualitative signature of precipitation (Fig. 8 / Fig. 14).
    pub fn isolated_is_decreasing(&self) -> bool {
        if self.rows.len() < 2 {
            return false;
        }
        let first = self.rows.first().unwrap().isolated;
        let last = self.rows.last().unwrap().isolated;
        last <= first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::analyze_clusters;
    use tensorkmc_lattice::{HalfVec, PeriodicBox, ShellTable, SiteArray, Species};

    fn report(n_cu_pairs: usize) -> (ClusterReport, f64) {
        let pbox = PeriodicBox::new(10, 10, 10, 2.87).unwrap();
        let mut l = SiteArray::pure_iron(pbox);
        for i in 0..n_cu_pairs {
            let base = 4 * i as i32;
            l.set_at(HalfVec::new(base, 0, 0), Species::Cu);
            l.set_at(HalfVec::new(base + 1, 1, 1), Species::Cu);
        }
        let shells = ShellTable::new(2.87, 6.5).unwrap();
        (
            analyze_clusters(&l, Species::Cu, &shells, 1),
            pbox.volume_m3(),
        )
    }

    #[test]
    fn push_and_csv() {
        let mut log = ObservableLog::new();
        let (r, v) = report(2);
        log.push(1e-6, 100, &r, v);
        log.push(2e-6, 200, &r, v);
        let csv = log.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("time_s,steps,isolated"));
        assert!(csv.contains("1e-6,100"));
    }

    #[test]
    fn decreasing_detection() {
        let mut log = ObservableLog::new();
        let (r, v) = report(1);
        assert!(!log.isolated_is_decreasing(), "empty log");
        log.push(0.0, 0, &r, v);
        log.push(1.0, 10, &r, v);
        assert!(
            log.isolated_is_decreasing(),
            "flat counts as non-increasing"
        );
        log.rows[1].isolated = log.rows[0].isolated + 5;
        assert!(!log.isolated_is_decreasing());
    }
}
