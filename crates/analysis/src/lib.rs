//! Post-processing of AKMC configurations: the observables of paper Fig. 8
//! (isolated Cu count) and §5 / Fig. 14 (Cu-precipitate cluster analysis,
//! maximum cluster size, cluster number density).

pub mod clusters;
pub mod diffusion;
pub mod rdf;
pub mod snapshot;
pub mod timeseries;

pub use clusters::{analyze_clusters, ClusterReport};
pub use diffusion::{random_walk_msd_slope, MsdTracker};
pub use rdf::{shell_rdf, ShellRdf};
pub use snapshot::{from_xyz, to_xyz};
pub use timeseries::{ObservableLog, ObservableRow, CSV_HEADER};
