//! Shell-resolved pair statistics (the lattice analogue of the radial
//! distribution function).
//!
//! On a lattice the RDF collapses to per-shell pair counts; normalising by
//! the random-alloy expectation gives the short-range-order signal that
//! distinguishes a solid solution (g ≈ 1 everywhere) from a precipitating
//! alloy (g(1NN) ≫ 1 for solute–solute pairs) — the quantitative version of
//! what paper Fig. 14 shows visually.

use tensorkmc_lattice::{ShellTable, SiteArray, Species};

/// Per-shell pair statistics for one (ordered) species pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ShellRdf {
    /// Shell distances, Å.
    pub r: Vec<f64>,
    /// Counted A–B pairs per shell (each unordered pair counted once when
    /// A == B, once per direction when A ≠ B).
    pub counts: Vec<u64>,
    /// Normalised `g(r)` per shell: counted / expected-for-random-alloy.
    pub g: Vec<f64>,
}

impl ShellRdf {
    /// `g` at the 1NN shell — the headline short-range-order number.
    pub fn g_first_shell(&self) -> f64 {
        self.g.first().copied().unwrap_or(0.0)
    }
}

/// Computes the shell RDF of species pair `(a, b)` over the whole box.
pub fn shell_rdf(lattice: &SiteArray, shells: &ShellTable, a: Species, b: Species) -> ShellRdf {
    let pbox = lattice.pbox();
    let n_shells = shells.n_shells();
    let mut counts = vec![0u64; n_shells];
    let ids_a = lattice.find_all(a);
    for &i in &ids_a {
        let p = pbox.coords(i);
        for o in &shells.offsets {
            if lattice.at(p + o.dv) == b {
                counts[o.shell as usize] += 1;
            }
        }
    }
    // Same-species pairs were double-counted (i sees j and j sees i).
    if a == b {
        for c in &mut counts {
            *c /= 2;
        }
    }

    // Random-alloy expectation: each of the shell's sites holds `b` with
    // probability x_b (excluding the central site itself).
    let n_sites = lattice.len() as f64;
    let census = lattice.census();
    let frac = |s: Species| match s {
        Species::Fe => census.0 as f64 / n_sites,
        Species::Cu => census.1 as f64 / n_sites,
        Species::Vacancy => census.2 as f64 / n_sites,
    };
    let (na, xb) = (ids_a.len() as f64, frac(b));
    let mut g = Vec::with_capacity(n_shells);
    let mut r = Vec::with_capacity(n_shells);
    for (s, shell) in shells.shells.iter().enumerate() {
        r.push(shell.r);
        let mut expected = na * shell.multiplicity as f64 * xb;
        if a == b {
            expected /= 2.0;
        }
        g.push(if expected > 0.0 {
            counts[s] as f64 / expected
        } else {
            0.0
        });
    }
    ShellRdf { r, counts, g }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorkmc_compat::rng::StdRng;
    use tensorkmc_lattice::{AlloyComposition, HalfVec, PeriodicBox};

    fn shells() -> ShellTable {
        ShellTable::new(2.87, 6.5).unwrap()
    }

    #[test]
    fn random_alloy_has_g_near_one() {
        let pbox = PeriodicBox::new(12, 12, 12, 2.87).unwrap();
        let comp = AlloyComposition {
            cu_fraction: 0.10,
            vacancy_fraction: 0.0,
        };
        let l = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(1)).unwrap();
        let rdf = shell_rdf(&l, &shells(), Species::Cu, Species::Cu);
        for (s, &g) in rdf.g.iter().enumerate() {
            assert!(
                (0.7..1.3).contains(&g),
                "shell {s}: g = {g} should be ~1 for a random alloy"
            );
        }
    }

    #[test]
    fn clustered_solutes_show_short_range_order() {
        // A compact Cu cluster: 1NN g must blow up relative to random.
        let pbox = PeriodicBox::new(12, 12, 12, 2.87).unwrap();
        let mut l = SiteArray::pure_iron(pbox);
        let c = HalfVec::new(12, 12, 12);
        l.set_at(c, Species::Cu);
        for d in HalfVec::FIRST_NN {
            l.set_at(pbox.wrap(c + d), Species::Cu);
        }
        let rdf = shell_rdf(&l, &shells(), Species::Cu, Species::Cu);
        assert!(
            rdf.g_first_shell() > 10.0,
            "clustered Cu: g(1NN) = {}",
            rdf.g_first_shell()
        );
    }

    #[test]
    fn pair_counting_is_symmetric_across_species_order() {
        let pbox = PeriodicBox::new(8, 8, 8, 2.87).unwrap();
        let comp = AlloyComposition {
            cu_fraction: 0.15,
            vacancy_fraction: 0.0,
        };
        let l = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(2)).unwrap();
        let t = shells();
        let ab = shell_rdf(&l, &t, Species::Fe, Species::Cu);
        let ba = shell_rdf(&l, &t, Species::Cu, Species::Fe);
        assert_eq!(ab.counts, ba.counts, "Fe–Cu pairs == Cu–Fe pairs");
    }

    #[test]
    fn pure_crystal_counts_match_multiplicities() {
        let pbox = PeriodicBox::new(6, 6, 6, 2.87).unwrap();
        let l = SiteArray::pure_iron(pbox);
        let t = shells();
        let rdf = shell_rdf(&l, &t, Species::Fe, Species::Fe);
        for (s, shell) in t.shells.iter().enumerate() {
            let expect = l.len() as u64 * shell.multiplicity as u64 / 2;
            assert_eq!(rdf.counts[s], expect, "shell {s}");
            assert!((rdf.g[s] - 1.0).abs() < 1e-12);
        }
    }
}
