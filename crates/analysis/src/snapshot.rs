//! Configuration export for visualisation (Fig. 14-style renderings).

use tensorkmc_lattice::{SiteArray, Species};

/// Serialises a configuration to extended-XYZ text. By default only solutes
/// and vacancies are written (bulk Fe would dominate the file and the
/// visualisation); pass `include_fe = true` for the full configuration.
pub fn to_xyz(lattice: &SiteArray, include_fe: bool) -> String {
    let pbox = lattice.pbox();
    let a = pbox.a();
    let [lx, ly, lz] = pbox.lengths();
    let mut atoms: Vec<(Species, [f64; 3])> = Vec::new();
    for (i, &sp) in lattice.as_slice().iter().enumerate() {
        if sp == Species::Fe && !include_fe {
            continue;
        }
        let p = pbox.coords(i).position(a);
        atoms.push((sp, p));
    }
    let mut out = String::new();
    out.push_str(&format!("{}\n", atoms.len()));
    out.push_str(&format!(
        "Lattice=\"{lx} 0 0 0 {ly} 0 0 0 {lz}\" Properties=species:S:1:pos:R:3\n"
    ));
    for (sp, [x, y, z]) in atoms {
        out.push_str(&format!("{} {x:.4} {y:.4} {z:.4}\n", sp.symbol()));
    }
    out
}

/// Parses an extended-XYZ snapshot produced by [`to_xyz`] back onto a given
/// periodic box (sites not listed become Fe if `fill_fe`, the usual case for
/// solute-only exports).
///
/// Positions must land on lattice sites of the box; anything else is an
/// error, as is a malformed header.
pub fn from_xyz(
    text: &str,
    pbox: tensorkmc_lattice::PeriodicBox,
    fill_fe: bool,
) -> Result<SiteArray, String> {
    let mut lines = text.lines();
    let n: usize = lines
        .next()
        .ok_or("empty file")?
        .trim()
        .parse()
        .map_err(|e| format!("bad atom count: {e}"))?;
    let _comment = lines.next().ok_or("missing comment line")?;
    let mut lattice = if fill_fe {
        SiteArray::pure_iron(pbox)
    } else {
        // A full export lists every site; start empty-ish (Fe) regardless —
        // every site will be overwritten.
        SiteArray::pure_iron(pbox)
    };
    let half = pbox.a() * 0.5;
    let mut parsed = 0;
    for line in lines.take(n) {
        let mut it = line.split_whitespace();
        let sym = it.next().ok_or_else(|| format!("short line: {line:?}"))?;
        let coords: Vec<f64> = it
            .take(3)
            .map(|v| v.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| format!("bad coordinate in {line:?}: {e}"))?;
        if coords.len() != 3 {
            return Err(format!("short line: {line:?}"));
        }
        let species = match sym {
            "Fe" => Species::Fe,
            "Cu" => Species::Cu,
            "X" => Species::Vacancy,
            other => return Err(format!("unknown species symbol {other:?}")),
        };
        let to_half = |v: f64| -> Result<i32, String> {
            let h = v / half;
            let r = h.round();
            if (h - r).abs() > 1e-3 {
                Err(format!("position {v} Å is off-lattice"))
            } else {
                Ok(r as i32)
            }
        };
        let p = tensorkmc_lattice::HalfVec::new(
            to_half(coords[0])?,
            to_half(coords[1])?,
            to_half(coords[2])?,
        );
        if !p.is_bcc_site() {
            return Err(format!("position {coords:?} violates bcc parity"));
        }
        lattice.set_at(p, species);
        parsed += 1;
    }
    if parsed != n {
        return Err(format!("header said {n} atoms, found {parsed}"));
    }
    Ok(lattice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorkmc_lattice::{HalfVec, PeriodicBox};

    fn lattice() -> SiteArray {
        let mut l = SiteArray::pure_iron(PeriodicBox::new(3, 3, 3, 2.87).unwrap());
        l.set_at(HalfVec::new(0, 0, 0), Species::Cu);
        l.set_at(HalfVec::new(1, 1, 1), Species::Vacancy);
        l
    }

    #[test]
    fn solutes_only_by_default() {
        let xyz = to_xyz(&lattice(), false);
        let mut lines = xyz.lines();
        assert_eq!(lines.next(), Some("2"));
        let header = lines.next().unwrap();
        assert!(header.contains("Lattice="));
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), 2);
        assert!(body.iter().any(|l| l.starts_with("Cu ")));
        assert!(body.iter().any(|l| l.starts_with("X ")));
    }

    #[test]
    fn full_export_includes_fe() {
        let l = lattice();
        let xyz = to_xyz(&l, true);
        let n: usize = xyz.lines().next().unwrap().parse().unwrap();
        assert_eq!(n, l.len());
    }

    #[test]
    fn positions_use_lattice_constant() {
        let xyz = to_xyz(&lattice(), false);
        // The body centre at (1,1,1) half-grid = 1.435 Å per axis.
        assert!(xyz.contains("X 1.4350 1.4350 1.4350"));
    }

    #[test]
    fn solute_export_round_trips() {
        let l = lattice();
        let xyz = to_xyz(&l, false);
        let back = from_xyz(&xyz, *l.pbox(), true).unwrap();
        assert_eq!(back.as_slice(), l.as_slice());
    }

    #[test]
    fn full_export_round_trips() {
        let l = lattice();
        let xyz = to_xyz(&l, true);
        let back = from_xyz(&xyz, *l.pbox(), false).unwrap();
        assert_eq!(back.as_slice(), l.as_slice());
    }

    #[test]
    fn importer_rejects_garbage() {
        let pbox = PeriodicBox::new(3, 3, 3, 2.87).unwrap();
        assert!(from_xyz("", pbox, true).is_err());
        assert!(
            from_xyz("2\nc\nCu 0 0 0\n", pbox, true).is_err(),
            "count mismatch"
        );
        assert!(
            from_xyz("1\nc\nZr 0 0 0\n", pbox, true).is_err(),
            "unknown species"
        );
        assert!(
            from_xyz("1\nc\nCu 0.7 0 0\n", pbox, true).is_err(),
            "off-lattice"
        );
        assert!(
            from_xyz("1\nc\nCu 1.435 0 0\n", pbox, true).is_err(),
            "parity violation"
        );
    }
}
