//! Union-find cluster analysis on the bcc lattice.
//!
//! Two solute atoms belong to the same cluster when they are within the
//! linkage shells of one another (1NN by default; 1NN+2NN is common for
//! bcc Cu-precipitate analysis). This powers the Fig. 8 isolated-Cu
//! validation curve and the Fig. 14 precipitation observables.

use std::collections::BTreeMap;
use tensorkmc_lattice::{HalfVec, ShellTable, SiteArray, Species};

/// Disjoint-set forest with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Result of a cluster analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Species analysed.
    pub species: Species,
    /// Total atoms of that species.
    pub total_atoms: usize,
    /// Number of clusters (including singletons).
    pub n_clusters: usize,
    /// Atoms in clusters of size 1 — the paper's "isolated Cu atoms".
    pub isolated: usize,
    /// Size of the largest cluster (`C_max` in Fig. 14).
    pub max_size: usize,
    /// `size → count` histogram.
    pub histogram: BTreeMap<usize, usize>,
}

impl ClusterReport {
    /// Number of clusters of at least `min_size` atoms.
    pub fn clusters_at_least(&self, min_size: usize) -> usize {
        self.histogram
            .iter()
            .filter(|(&s, _)| s >= min_size)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Number density (clusters/m³) of clusters with at least `min_size`
    /// atoms, for a box of volume `volume_m3` — the §5 observable
    /// (paper: ≈1.71×10²⁶ m⁻³).
    pub fn number_density(&self, volume_m3: f64, min_size: usize) -> f64 {
        self.clusters_at_least(min_size) as f64 / volume_m3
    }

    /// Mean cluster size.
    pub fn mean_size(&self) -> f64 {
        if self.n_clusters == 0 {
            0.0
        } else {
            self.total_atoms as f64 / self.n_clusters as f64
        }
    }
}

/// Clusters all atoms of `species` using neighbour shells
/// `0..linkage_shells` of the given shell table as the linkage criterion
/// (`linkage_shells = 1` means 1NN only; `2` adds the 2NN shell).
pub fn analyze_clusters(
    lattice: &SiteArray,
    species: Species,
    shells: &ShellTable,
    linkage_shells: usize,
) -> ClusterReport {
    let ids = lattice.find_all(species);
    let n = ids.len();
    // Map from lattice site index to the compact solute index.
    let mut solute_of_site: std::collections::HashMap<usize, u32> =
        std::collections::HashMap::with_capacity(n);
    for (k, &site) in ids.iter().enumerate() {
        solute_of_site.insert(site, k as u32);
    }
    let offsets: Vec<HalfVec> = shells
        .offsets
        .iter()
        .filter(|o| (o.shell as usize) < linkage_shells)
        .map(|o| o.dv)
        .collect();
    let pbox = lattice.pbox();
    let mut uf = UnionFind::new(n);
    for (k, &site) in ids.iter().enumerate() {
        let p = pbox.coords(site);
        for &dv in &offsets {
            let q = pbox.index(p + dv);
            if let Some(&j) = solute_of_site.get(&q) {
                uf.union(k as u32, j);
            }
        }
    }
    // Tally cluster sizes.
    let mut size_of_root: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for k in 0..n as u32 {
        let r = uf.find(k);
        *size_of_root.entry(r).or_insert(0) += 1;
    }
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for &s in size_of_root.values() {
        *histogram.entry(s).or_insert(0) += 1;
    }
    let isolated = histogram.get(&1).copied().unwrap_or(0);
    let max_size = histogram.keys().next_back().copied().unwrap_or(0);
    ClusterReport {
        species,
        total_atoms: n,
        n_clusters: size_of_root.len(),
        isolated,
        max_size,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorkmc_lattice::PeriodicBox;

    fn empty_lattice(cells: i32) -> SiteArray {
        SiteArray::pure_iron(PeriodicBox::new(cells, cells, cells, 2.87).unwrap())
    }

    fn shells() -> ShellTable {
        ShellTable::new(2.87, 6.5).unwrap()
    }

    #[test]
    fn empty_species_yields_empty_report() {
        let l = empty_lattice(6);
        let r = analyze_clusters(&l, Species::Cu, &shells(), 1);
        assert_eq!(r.total_atoms, 0);
        assert_eq!(r.n_clusters, 0);
        assert_eq!(r.isolated, 0);
        assert_eq!(r.max_size, 0);
        assert_eq!(r.mean_size(), 0.0);
    }

    #[test]
    fn isolated_atoms_counted() {
        let mut l = empty_lattice(8);
        // Three Cu atoms far apart.
        l.set_at(HalfVec::new(0, 0, 0), Species::Cu);
        l.set_at(HalfVec::new(8, 0, 0), Species::Cu);
        l.set_at(HalfVec::new(0, 8, 8), Species::Cu);
        let r = analyze_clusters(&l, Species::Cu, &shells(), 1);
        assert_eq!(r.total_atoms, 3);
        assert_eq!(r.n_clusters, 3);
        assert_eq!(r.isolated, 3);
        assert_eq!(r.max_size, 1);
    }

    #[test]
    fn first_nn_pair_forms_one_cluster() {
        let mut l = empty_lattice(8);
        l.set_at(HalfVec::new(4, 4, 4), Species::Cu);
        l.set_at(HalfVec::new(5, 5, 5), Species::Cu); // 1NN
        let r = analyze_clusters(&l, Species::Cu, &shells(), 1);
        assert_eq!(r.n_clusters, 1);
        assert_eq!(r.max_size, 2);
        assert_eq!(r.isolated, 0);
    }

    #[test]
    fn second_nn_pair_depends_on_linkage() {
        let mut l = empty_lattice(8);
        l.set_at(HalfVec::new(4, 4, 4), Species::Cu);
        l.set_at(HalfVec::new(6, 4, 4), Species::Cu); // 2NN
        let r1 = analyze_clusters(&l, Species::Cu, &shells(), 1);
        assert_eq!(r1.n_clusters, 2, "1NN linkage sees two singletons");
        let r2 = analyze_clusters(&l, Species::Cu, &shells(), 2);
        assert_eq!(r2.n_clusters, 1, "2NN linkage joins them");
    }

    #[test]
    fn chain_percolates_through_periodic_boundary() {
        let mut l = empty_lattice(4); // extent 8
                                      // A 1NN chain crossing the boundary: (7,7,7) -> (8,8,8) wraps to 0.
        l.set_at(HalfVec::new(7, 7, 7), Species::Cu);
        l.set_at(HalfVec::new(0, 0, 0), Species::Cu);
        let r = analyze_clusters(&l, Species::Cu, &shells(), 1);
        assert_eq!(r.n_clusters, 1, "wraps are neighbours");
    }

    #[test]
    fn histogram_and_density() {
        let mut l = empty_lattice(10);
        // One 3-cluster (1NN chain) and two singletons.
        l.set_at(HalfVec::new(4, 4, 4), Species::Cu);
        l.set_at(HalfVec::new(5, 5, 5), Species::Cu);
        l.set_at(HalfVec::new(6, 6, 6), Species::Cu);
        l.set_at(HalfVec::new(0, 0, 0), Species::Cu);
        l.set_at(HalfVec::new(12, 0, 0), Species::Cu);
        let r = analyze_clusters(&l, Species::Cu, &shells(), 1);
        assert_eq!(r.histogram.get(&3), Some(&1));
        assert_eq!(r.histogram.get(&1), Some(&2));
        assert_eq!(r.clusters_at_least(2), 1);
        assert_eq!(r.clusters_at_least(1), 3);
        let v = l.pbox().volume_m3();
        assert!((r.number_density(v, 2) - 1.0 / v).abs() < 1e-6 / v);
        assert!((r.mean_size() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn vacancies_can_be_clustered_too() {
        // Void detection (paper §5 mentions void formation) reuses the same
        // machinery with Species::Vacancy.
        let mut l = empty_lattice(8);
        l.set_at(HalfVec::new(4, 4, 4), Species::Vacancy);
        l.set_at(HalfVec::new(5, 5, 5), Species::Vacancy);
        let r = analyze_clusters(&l, Species::Vacancy, &shells(), 1);
        assert_eq!(r.max_size, 2);
    }
}
