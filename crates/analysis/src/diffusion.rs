//! Vacancy transport analysis: mean-square displacement and diffusion
//! coefficients.
//!
//! Vacancy diffusion is the elementary kinetic process of the whole paper
//! (§2.1 opens with it). For an uncorrelated random walk on the bcc lattice
//! with total hop rate `Γ_tot` and jump length `d = √3/2·a`, theory gives
//! `MSD(t) = Γ_tot·d²·t` and `D = Γ_tot·d²/6` — a quantitative target the
//! simulated trajectories must hit, which makes this module a physics
//! validator as much as an observable.

use tensorkmc_lattice::{HalfVec, PeriodicBox};

/// Tracks unwrapped trajectories of tagged walkers (vacancies) across
/// periodic boundaries.
#[derive(Debug, Clone)]
pub struct MsdTracker {
    pbox: PeriodicBox,
    /// Starting positions (wrapped).
    start: Vec<HalfVec>,
    /// Accumulated unwrapped displacement per walker, half-grid units.
    displacement: Vec<HalfVec>,
    /// Last known wrapped position per walker.
    last: Vec<HalfVec>,
    /// Samples of `(time, msd in Å²)`.
    pub samples: Vec<(f64, f64)>,
}

impl MsdTracker {
    /// Starts tracking the given walkers.
    pub fn new(pbox: PeriodicBox, positions: Vec<HalfVec>) -> Self {
        let start: Vec<HalfVec> = positions.iter().map(|&p| pbox.wrap(p)).collect();
        MsdTracker {
            pbox,
            displacement: vec![HalfVec::ZERO; start.len()],
            last: start.clone(),
            start,
            samples: Vec::new(),
        }
    }

    /// Number of walkers.
    pub fn n_walkers(&self) -> usize {
        self.start.len()
    }

    /// Records that walker `i` moved to (wrapped) position `to`. The hop is
    /// unwrapped through the minimum image, so box crossings accumulate.
    pub fn record_move(&mut self, i: usize, to: HalfVec) {
        let to = self.pbox.wrap(to);
        let d = self.pbox.min_image(self.last[i], to);
        self.displacement[i] += d;
        self.last[i] = to;
    }

    /// Walker `i` matching a wrapped position, if any (for engines that
    /// report hops by position rather than walker id).
    pub fn walker_at(&self, p: HalfVec) -> Option<usize> {
        let w = self.pbox.wrap(p);
        self.last.iter().position(|&q| q == w)
    }

    /// Current mean-square displacement in Å².
    pub fn msd(&self) -> f64 {
        if self.displacement.is_empty() {
            return 0.0;
        }
        let h = self.pbox.a() * 0.5;
        let sum: f64 = self
            .displacement
            .iter()
            .map(|d| d.norm2() as f64 * h * h)
            .sum();
        sum / self.displacement.len() as f64
    }

    /// Records a `(time, MSD)` sample.
    pub fn sample(&mut self, time: f64) {
        let m = self.msd();
        self.samples.push((time, m));
    }

    /// Least-squares slope of MSD vs t through the recorded samples, Å²/s.
    pub fn msd_slope(&self) -> f64 {
        let n = self.samples.len() as f64;
        if self.samples.len() < 2 {
            return 0.0;
        }
        let (mut st, mut sm, mut stt, mut stm) = (0.0, 0.0, 0.0, 0.0);
        for &(t, m) in &self.samples {
            st += t;
            sm += m;
            stt += t * t;
            stm += t * m;
        }
        let denom = n * stt - st * st;
        if denom == 0.0 {
            0.0
        } else {
            (n * stm - st * sm) / denom
        }
    }

    /// Tracer diffusion coefficient `D = slope/6` in Å²/s.
    pub fn diffusion_coefficient(&self) -> f64 {
        self.msd_slope() / 6.0
    }
}

/// Theoretical random-walk MSD slope `Γ_tot·d²` (Å²/s) for a walker hopping
/// at total rate `gamma_total` with bcc 1NN jumps of a lattice with constant
/// `a` Å.
pub fn random_walk_msd_slope(gamma_total: f64, a: f64) -> f64 {
    let d2 = 0.75 * a * a; // |(±1,±1,±1)·a/2|² = 3a²/4
    gamma_total * d2
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorkmc_compat::rng::Rng;
    use tensorkmc_compat::rng::StdRng;

    fn pbox() -> PeriodicBox {
        PeriodicBox::new(8, 8, 8, 2.87).unwrap()
    }

    #[test]
    fn stationary_walker_has_zero_msd() {
        let t = MsdTracker::new(pbox(), vec![HalfVec::ZERO]);
        assert_eq!(t.msd(), 0.0);
    }

    #[test]
    fn single_hop_msd_is_jump_length_squared() {
        let b = pbox();
        let mut t = MsdTracker::new(b, vec![HalfVec::ZERO]);
        t.record_move(0, HalfVec::new(1, 1, 1));
        let a = 2.87;
        assert!((t.msd() - 0.75 * a * a).abs() < 1e-12);
    }

    #[test]
    fn boundary_crossings_unwrap() {
        let b = pbox(); // extent 16
        let mut t = MsdTracker::new(b, vec![HalfVec::new(15, 15, 15)]);
        // Hop across the corner: wraps to (0,0,0) but displacement is 1NN.
        t.record_move(0, HalfVec::new(16, 16, 16));
        let a = 2.87;
        assert!((t.msd() - 0.75 * a * a).abs() < 1e-12);
        // Keep walking the same direction: displacement keeps growing.
        t.record_move(0, HalfVec::new(17, 17, 17));
        assert!((t.msd() - 3.0 * a * a).abs() < 1e-12);
    }

    #[test]
    fn random_walk_matches_theory() {
        // Simulate a plain 1NN random walk with exponential waiting times and
        // compare the fitted MSD slope with Γ·d².
        let b = pbox();
        let gamma_total = 1e9;
        let mut rng = StdRng::seed_from_u64(3);
        let n_walkers = 200;
        let mut t = MsdTracker::new(b, vec![HalfVec::ZERO; n_walkers]);
        let mut time = 0.0;
        let steps = 40_000;
        for s in 0..steps {
            // One global clock: each event moves a random walker.
            let u: f64 = rng.gen_range(1e-12..1.0f64);
            time += -u.ln() / (gamma_total * n_walkers as f64);
            let w = rng.gen_range(0..n_walkers);
            let dir = HalfVec::FIRST_NN[rng.gen_range(0..8usize)];
            let to = b.wrap(t.last[w] + dir);
            t.record_move(w, to);
            if s % 500 == 0 {
                t.sample(time);
            }
        }
        let slope = t.msd_slope();
        let theory = random_walk_msd_slope(gamma_total, 2.87);
        assert!(
            (slope - theory).abs() / theory < 0.15,
            "slope {slope:.3e} vs theory {theory:.3e}"
        );
    }

    #[test]
    fn walker_lookup_by_position() {
        let b = pbox();
        let mut t = MsdTracker::new(b, vec![HalfVec::ZERO, HalfVec::new(4, 4, 4)]);
        assert_eq!(t.walker_at(HalfVec::ZERO), Some(0));
        assert_eq!(t.walker_at(HalfVec::new(4, 4, 4)), Some(1));
        assert_eq!(t.walker_at(HalfVec::new(2, 2, 2)), None);
        t.record_move(1, HalfVec::new(5, 5, 5));
        assert_eq!(t.walker_at(HalfVec::new(5, 5, 5)), Some(1));
        assert_eq!(t.walker_at(HalfVec::new(4, 4, 4)), None);
    }

    #[test]
    fn slope_of_linear_samples_is_exact() {
        let b = pbox();
        let mut t = MsdTracker::new(b, vec![HalfVec::ZERO]);
        t.samples = vec![(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 6.0)];
        assert!((t.msd_slope() - 2.0).abs() < 1e-12);
        assert!((t.diffusion_coefficient() - 2.0 / 6.0).abs() < 1e-12);
    }
}
