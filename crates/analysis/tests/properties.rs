//! Property-based tests of the cluster analysis (compat::prop harness).

use tensorkmc_analysis::analyze_clusters;
use tensorkmc_compat::prop::check_n;
use tensorkmc_compat::rng::{Rng, StdRng};
use tensorkmc_lattice::{AlloyComposition, PeriodicBox, ShellTable, SiteArray, Species};

fn random_lattice(seed: u64, cu: f64) -> SiteArray {
    let pbox = PeriodicBox::new(6, 6, 6, 2.87).unwrap();
    SiteArray::random_alloy(
        pbox,
        AlloyComposition {
            cu_fraction: cu,
            vacancy_fraction: 0.0,
        },
        &mut StdRng::seed_from_u64(seed),
    )
    .unwrap()
}

#[test]
fn cluster_sizes_partition_the_solutes() {
    check_n(48, |g| {
        let seed = g.gen_range(0u64..10_000);
        let cu = g.gen_range(0.01f64..0.3);
        let l = random_lattice(seed, cu);
        let shells = ShellTable::new(2.87, 6.5).unwrap();
        let r = analyze_clusters(&l, Species::Cu, &shells, 1);
        // Σ size·count over the histogram equals the solute count.
        let total: usize = r.histogram.iter().map(|(s, c)| s * c).sum();
        assert_eq!(total, r.total_atoms);
        let clusters: usize = r.histogram.values().sum();
        assert_eq!(clusters, r.n_clusters);
        assert_eq!(r.isolated, r.histogram.get(&1).copied().unwrap_or(0));
        assert!(r.max_size <= r.total_atoms);
        assert_eq!(r.total_atoms, l.census().1);
    });
}

#[test]
fn wider_linkage_never_increases_cluster_count() {
    check_n(48, |g| {
        let seed = g.gen_range(0u64..10_000);
        let cu = g.gen_range(0.02f64..0.2);
        let l = random_lattice(seed, cu);
        let shells = ShellTable::new(2.87, 6.5).unwrap();
        let r1 = analyze_clusters(&l, Species::Cu, &shells, 1);
        let r2 = analyze_clusters(&l, Species::Cu, &shells, 2);
        let r3 = analyze_clusters(&l, Species::Cu, &shells, 3);
        assert!(r2.n_clusters <= r1.n_clusters);
        assert!(r3.n_clusters <= r2.n_clusters);
        assert!(r2.max_size >= r1.max_size);
        assert_eq!(r1.total_atoms, r2.total_atoms);
    });
}

#[test]
fn density_scales_inversely_with_volume() {
    check_n(48, |g| {
        let seed = g.gen_range(0u64..1000);
        let min_size = g.gen_range(1usize..4);
        let l = random_lattice(seed, 0.05);
        let shells = ShellTable::new(2.87, 6.5).unwrap();
        let r = analyze_clusters(&l, Species::Cu, &shells, 1);
        let v = l.pbox().volume_m3();
        let d1 = r.number_density(v, min_size);
        let d2 = r.number_density(2.0 * v, min_size);
        assert!((d1 - 2.0 * d2).abs() < 1e-6 * d1.max(1.0));
        assert_eq!(r.clusters_at_least(1), r.n_clusters);
    });
}
