//! Property-based tests of the lattice substrate.

use proptest::prelude::*;
use tensorkmc_lattice::{HalfVec, LocalIndexer, PeriodicBox, PosIdIndexer, SiteIndexer};

fn small_box() -> impl Strategy<Value = PeriodicBox> {
    (1i32..6, 1i32..6, 1i32..6).prop_map(|(x, y, z)| PeriodicBox::new(x, y, z, 2.87).unwrap())
}

proptest! {
    #[test]
    fn index_coords_round_trip(pbox in small_box(), i in 0usize..1000) {
        let i = i % pbox.n_sites();
        let v = pbox.coords(i);
        prop_assert!(v.is_bcc_site());
        prop_assert_eq!(pbox.index(v), i);
    }

    #[test]
    fn wrapping_is_idempotent_and_translation_invariant(
        pbox in small_box(),
        x in -100i32..100, y in -100i32..100, z in -100i32..100,
        kx in -3i32..3, ky in -3i32..3, kz in -3i32..3,
    ) {
        // Force a valid parity.
        let p = HalfVec::new(2 * x, 2 * y, 2 * z);
        let w = pbox.wrap(p);
        prop_assert_eq!(pbox.wrap(w), w);
        let (ex, ey, ez) = pbox.extent();
        let shifted = p + HalfVec::new(kx * ex, ky * ey, kz * ez);
        prop_assert_eq!(pbox.wrap(shifted), w);
    }

    #[test]
    fn min_image_is_antisymmetric_and_bounded(
        pbox in small_box(),
        a in 0usize..1000, b in 0usize..1000,
    ) {
        let pa = pbox.coords(a % pbox.n_sites());
        let pb = pbox.coords(b % pbox.n_sites());
        let d = pbox.min_image(pa, pb);
        let r = pbox.min_image(pb, pa);
        let (ex, ey, ez) = pbox.extent();
        // Each component at most half the extent in magnitude.
        prop_assert!(d.x.abs() <= ex / 2 && d.y.abs() <= ey / 2 && d.z.abs() <= ez / 2);
        // d and -r are congruent modulo the box.
        prop_assert_eq!(pbox.wrap(pa + d), pbox.wrap(pb));
        prop_assert_eq!(pbox.wrap(pb + r), pbox.wrap(pa));
        // Symmetric distances.
        prop_assert_eq!(d.norm2(), r.norm2());
    }

    #[test]
    fn direct_indexer_always_matches_pos_id_table(
        bx in 1i32..5, by in 1i32..5, bz in 1i32..5,
        ghost in 0i32..4,
        ox in -4i32..5, oy in -4i32..5, oz in -4i32..5,
    ) {
        let lo = HalfVec::new(ox, oy, oz);
        let hi = HalfVec::new(ox + 2 * bx, oy + 2 * by, oz + 2 * bz);
        let direct = LocalIndexer::new(lo, hi, ghost).unwrap();
        let table = PosIdIndexer::new(lo, hi, ghost).unwrap();
        prop_assert_eq!(direct.n_local(), table.n_local());
        prop_assert_eq!(direct.n_ghost(), table.n_ghost());
        for x in lo.x - ghost..hi.x + ghost {
            for y in lo.y - ghost..hi.y + ghost {
                for z in lo.z - ghost..hi.z + ghost {
                    let p = HalfVec::new(x, y, z);
                    if p.is_bcc_site() {
                        prop_assert_eq!(direct.slot(p), table.slot(p), "at {:?}", p);
                    }
                }
            }
        }
    }

    #[test]
    fn positions_respect_lattice_constant(
        x in -20i32..20, y in -20i32..20, z in -20i32..20,
    ) {
        let p = HalfVec::new(2 * x, 2 * y, 2 * z);
        let pos = p.position(2.87);
        prop_assert!((pos[0] - (x as f64) * 2.87).abs() < 1e-12);
        // Squared length consistency.
        let direct: f64 = pos.iter().map(|v| v * v).sum();
        let via_norm = p.norm2() as f64 * (2.87f64 / 2.0).powi(2);
        prop_assert!((direct - via_norm).abs() < 1e-9);
    }
}
