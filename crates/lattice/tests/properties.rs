//! Property-based tests of the lattice substrate (compat::prop harness).

use tensorkmc_compat::prop::{check, Gen};
use tensorkmc_compat::rng::Rng;
use tensorkmc_lattice::{HalfVec, LocalIndexer, PeriodicBox, PosIdIndexer, SiteIndexer};

fn small_box(g: &mut Gen) -> PeriodicBox {
    let (x, y, z) = (
        g.gen_range(1i32..6),
        g.gen_range(1i32..6),
        g.gen_range(1i32..6),
    );
    PeriodicBox::new(x, y, z, 2.87).unwrap()
}

#[test]
fn index_coords_round_trip() {
    check(|g| {
        let pbox = small_box(g);
        let i = g.gen_range(0usize..1000) % pbox.n_sites();
        let v = pbox.coords(i);
        assert!(v.is_bcc_site());
        assert_eq!(pbox.index(v), i);
    });
}

#[test]
fn wrapping_is_idempotent_and_translation_invariant() {
    check(|g| {
        let pbox = small_box(g);
        let (x, y, z) = (
            g.gen_range(-100i32..100),
            g.gen_range(-100i32..100),
            g.gen_range(-100i32..100),
        );
        let (kx, ky, kz) = (
            g.gen_range(-3i32..3),
            g.gen_range(-3i32..3),
            g.gen_range(-3i32..3),
        );
        // Force a valid parity.
        let p = HalfVec::new(2 * x, 2 * y, 2 * z);
        let w = pbox.wrap(p);
        assert_eq!(pbox.wrap(w), w);
        let (ex, ey, ez) = pbox.extent();
        let shifted = p + HalfVec::new(kx * ex, ky * ey, kz * ez);
        assert_eq!(pbox.wrap(shifted), w);
    });
}

#[test]
fn min_image_is_antisymmetric_and_bounded() {
    check(|g| {
        let pbox = small_box(g);
        let a = g.gen_range(0usize..1000);
        let b = g.gen_range(0usize..1000);
        let pa = pbox.coords(a % pbox.n_sites());
        let pb = pbox.coords(b % pbox.n_sites());
        let d = pbox.min_image(pa, pb);
        let r = pbox.min_image(pb, pa);
        let (ex, ey, ez) = pbox.extent();
        // Each component at most half the extent in magnitude.
        assert!(d.x.abs() <= ex / 2 && d.y.abs() <= ey / 2 && d.z.abs() <= ez / 2);
        // d and -r are congruent modulo the box.
        assert_eq!(pbox.wrap(pa + d), pbox.wrap(pb));
        assert_eq!(pbox.wrap(pb + r), pbox.wrap(pa));
        // Symmetric distances.
        assert_eq!(d.norm2(), r.norm2());
    });
}

#[test]
fn direct_indexer_always_matches_pos_id_table() {
    check(|g| {
        let (bx, by, bz) = (
            g.gen_range(1i32..5),
            g.gen_range(1i32..5),
            g.gen_range(1i32..5),
        );
        let ghost = g.gen_range(0i32..4);
        let (ox, oy, oz) = (
            g.gen_range(-4i32..5),
            g.gen_range(-4i32..5),
            g.gen_range(-4i32..5),
        );
        let lo = HalfVec::new(ox, oy, oz);
        let hi = HalfVec::new(ox + 2 * bx, oy + 2 * by, oz + 2 * bz);
        let direct = LocalIndexer::new(lo, hi, ghost).unwrap();
        let table = PosIdIndexer::new(lo, hi, ghost).unwrap();
        assert_eq!(direct.n_local(), table.n_local());
        assert_eq!(direct.n_ghost(), table.n_ghost());
        for x in lo.x - ghost..hi.x + ghost {
            for y in lo.y - ghost..hi.y + ghost {
                for z in lo.z - ghost..hi.z + ghost {
                    let p = HalfVec::new(x, y, z);
                    if p.is_bcc_site() {
                        assert_eq!(direct.slot(p), table.slot(p), "at {p:?}");
                    }
                }
            }
        }
    });
}

#[test]
fn positions_respect_lattice_constant() {
    check(|g| {
        let (x, y, z) = (
            g.gen_range(-20i32..20),
            g.gen_range(-20i32..20),
            g.gen_range(-20i32..20),
        );
        let p = HalfVec::new(2 * x, 2 * y, 2 * z);
        let pos = p.position(2.87);
        assert!((pos[0] - (x as f64) * 2.87).abs() < 1e-12);
        // Squared length consistency.
        let direct: f64 = pos.iter().map(|v| v * v).sum();
        let via_norm = p.norm2() as f64 * (2.87f64 / 2.0).powi(2);
        assert!((direct - via_norm).abs() < 1e-9);
    });
}
