//! Discrete neighbour shells of the bcc lattice.
//!
//! In AKMC atoms always sit on lattice sites, so interatomic distances take
//! only a handful of discrete values within the cutoff (paper §3.4). The
//! [`ShellTable`] enumerates those values once; everything downstream (the
//! feature TABLE of Eq. 6, the NET) refers to distances by *shell index*, a
//! small integer.

use crate::error::LatticeError;
use crate::ivec::HalfVec;

/// One neighbour shell: all sites at the same distance from a centre site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shell {
    /// Squared distance in half-grid units (`|Δ|²` with Δ in units of `a/2`).
    pub norm2: i64,
    /// Euclidean distance in Å.
    pub r: f64,
    /// Number of sites in the shell.
    pub multiplicity: usize,
}

tensorkmc_compat::impl_json_struct!(Shell {
    norm2,
    r,
    multiplicity
});

/// A neighbour offset annotated with its shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborOffset {
    /// Relative half-grid coordinates of the neighbour.
    pub dv: HalfVec,
    /// Index into [`ShellTable::shells`].
    pub shell: u8,
}

tensorkmc_compat::impl_json_struct!(NeighborOffset { dv, shell });

/// All neighbour offsets of a bcc site within a cutoff radius, grouped into
/// shells of equal distance.
#[derive(Debug, Clone, PartialEq)]
pub struct ShellTable {
    /// Lattice constant in Å.
    pub a: f64,
    /// Cutoff radius in Å.
    pub rcut: f64,
    /// Shells in increasing distance order.
    pub shells: Vec<Shell>,
    /// Every neighbour offset within the cutoff (`N_local` entries), ordered
    /// by shell then lexicographically — a deterministic order shared by all
    /// tabulations built from this table.
    pub offsets: Vec<NeighborOffset>,
}

tensorkmc_compat::impl_json_struct!(ShellTable {
    a,
    rcut,
    shells,
    offsets
});

impl ShellTable {
    /// Enumerates the shells of a bcc lattice with constant `a` (Å) within
    /// cutoff `rcut` (Å).
    ///
    /// For the paper's Fe–Cu parameters (`a = 2.87`, `rcut = 6.5`) this yields
    /// 8 shells and `N_local = 112` offsets.
    pub fn new(a: f64, rcut: f64) -> Result<Self, LatticeError> {
        let min = 3f64.sqrt() / 2.0 * a;
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe rejection
        if !(rcut >= min) {
            return Err(LatticeError::CutoffTooSmall { rcut, min });
        }
        let half = a * 0.5;
        // Largest |component| a valid offset can have.
        let m = (rcut / half).floor() as i32 + 1;
        let lim2 = (rcut / half) * (rcut / half) + 1e-9;

        let mut by_norm2: Vec<(i64, Vec<HalfVec>)> = Vec::new();
        for x in -m..=m {
            for y in -m..=m {
                for z in -m..=m {
                    let dv = HalfVec::new(x, y, z);
                    if dv == HalfVec::ZERO || !dv.is_bcc_offset() {
                        continue;
                    }
                    let n2 = dv.norm2();
                    if (n2 as f64) > lim2 {
                        continue;
                    }
                    match by_norm2.binary_search_by_key(&n2, |e| e.0) {
                        Ok(i) => by_norm2[i].1.push(dv),
                        Err(i) => by_norm2.insert(i, (n2, vec![dv])),
                    }
                }
            }
        }

        let mut shells = Vec::with_capacity(by_norm2.len());
        let mut offsets = Vec::new();
        for (si, (n2, mut dvs)) in by_norm2.into_iter().enumerate() {
            dvs.sort_unstable();
            shells.push(Shell {
                norm2: n2,
                r: (n2 as f64).sqrt() * half,
                multiplicity: dvs.len(),
            });
            let shell = u8::try_from(si).expect("more than 255 shells is unphysical");
            offsets.extend(dvs.into_iter().map(|dv| NeighborOffset { dv, shell }));
        }
        Ok(ShellTable {
            a,
            rcut,
            shells,
            offsets,
        })
    }

    /// Number of neighbours within the cutoff (`N_local` in the paper).
    #[inline]
    pub fn n_local(&self) -> usize {
        self.offsets.len()
    }

    /// Number of distinct shells.
    #[inline]
    pub fn n_shells(&self) -> usize {
        self.shells.len()
    }

    /// Distance of shell `s` in Å.
    #[inline]
    pub fn shell_distance(&self, s: u8) -> f64 {
        self.shells[s as usize].r
    }

    /// Finds the shell index of an offset, if it lies within the cutoff.
    pub fn shell_of(&self, dv: HalfVec) -> Option<u8> {
        let n2 = dv.norm2();
        self.shells
            .iter()
            .position(|s| s.norm2 == n2)
            .map(|i| i as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_standard_cutoff() {
        // Paper §4.1.1: rcut = 6.5 Å gives N_local = 112.
        let t = ShellTable::new(2.87, 6.5).unwrap();
        assert_eq!(t.n_local(), 112);
        assert_eq!(t.n_shells(), 8);
        let mults: Vec<usize> = t.shells.iter().map(|s| s.multiplicity).collect();
        assert_eq!(mults, vec![8, 6, 12, 24, 8, 6, 24, 24]);
    }

    #[test]
    fn paper_geometry_short_cutoff() {
        // Fig. 11's shorter cutoff: fewer atoms per vacancy system.
        let t = ShellTable::new(2.87, 5.8).unwrap();
        assert_eq!(t.n_local(), 64);
        assert!(t.n_local() < ShellTable::new(2.87, 6.5).unwrap().n_local());
    }

    #[test]
    fn shells_sorted_and_distances_increase() {
        let t = ShellTable::new(2.87, 6.5).unwrap();
        for w in t.shells.windows(2) {
            assert!(w[0].norm2 < w[1].norm2);
            assert!(w[0].r < w[1].r);
        }
        // First shell is the 8 first-nearest neighbours at sqrt(3)/2 a.
        assert_eq!(t.shells[0].norm2, 3);
        assert_eq!(t.shells[0].multiplicity, 8);
    }

    #[test]
    fn offsets_cover_all_shells_with_correct_multiplicity() {
        let t = ShellTable::new(2.87, 6.5).unwrap();
        let mut counts = vec![0usize; t.n_shells()];
        for o in &t.offsets {
            counts[o.shell as usize] += 1;
            assert_eq!(t.shells[o.shell as usize].norm2, o.dv.norm2());
        }
        for (s, c) in t.shells.iter().zip(counts) {
            assert_eq!(s.multiplicity, c);
        }
    }

    #[test]
    fn offsets_are_inversion_symmetric() {
        let t = ShellTable::new(2.87, 6.5).unwrap();
        for o in &t.offsets {
            assert!(
                t.offsets.iter().any(|p| p.dv == -o.dv),
                "missing inverse of {:?}",
                o.dv
            );
        }
    }

    #[test]
    fn cutoff_below_first_shell_is_rejected() {
        let err = ShellTable::new(2.87, 1.0).unwrap_err();
        assert!(matches!(err, LatticeError::CutoffTooSmall { .. }));
    }

    #[test]
    fn shell_of_round_trips() {
        let t = ShellTable::new(2.87, 6.5).unwrap();
        for o in &t.offsets {
            assert_eq!(t.shell_of(o.dv), Some(o.shell));
        }
        assert_eq!(t.shell_of(HalfVec::new(6, 6, 6)), None);
    }

    #[test]
    fn deterministic_order() {
        let t1 = ShellTable::new(2.87, 6.5).unwrap();
        let t2 = ShellTable::new(2.87, 6.5).unwrap();
        assert_eq!(t1, t2);
    }
}
