//! Integer vectors on the bcc half-grid.

use std::ops::{Add, AddAssign, Neg, Sub};

/// An integer coordinate on the *half-grid*.
///
/// A bcc lattice with lattice constant `a` is embedded in the cubic grid of
/// spacing `a/2`: a point `(i, j, k)` is a lattice site iff `i ≡ j ≡ k (mod 2)`.
/// The all-even parity class holds the cube corners, the all-odd class the
/// body centres. First-nearest neighbours are the eight `(±1, ±1, ±1)`
/// offsets, which swap parity class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HalfVec {
    /// x component, in units of `a/2`.
    pub x: i32,
    /// y component, in units of `a/2`.
    pub y: i32,
    /// z component, in units of `a/2`.
    pub z: i32,
}

tensorkmc_compat::impl_json_struct!(HalfVec { x, y, z });

impl HalfVec {
    /// The origin.
    pub const ZERO: HalfVec = HalfVec { x: 0, y: 0, z: 0 };

    /// Creates a new half-grid vector.
    #[inline]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        HalfVec { x, y, z }
    }

    /// Squared length in half-grid units (i.e. `|v|² / (a/2)²`).
    #[inline]
    pub const fn norm2(self) -> i64 {
        let (x, y, z) = (self.x as i64, self.y as i64, self.z as i64);
        x * x + y * y + z * z
    }

    /// Euclidean length in Å for lattice constant `a`.
    #[inline]
    pub fn length(self, a: f64) -> f64 {
        (self.norm2() as f64).sqrt() * a * 0.5
    }

    /// Whether the coordinate satisfies the bcc parity constraint
    /// `x ≡ y ≡ z (mod 2)` and therefore names a lattice site.
    #[inline]
    pub const fn is_bcc_site(self) -> bool {
        let px = self.x & 1;
        px == (self.y & 1) && px == (self.z & 1)
    }

    /// Whether this is an offset *between* bcc sites (the difference of two
    /// valid sites — same condition as [`Self::is_bcc_site`], applied to a
    /// displacement).
    #[inline]
    pub const fn is_bcc_offset(self) -> bool {
        self.is_bcc_site()
    }

    /// Cartesian position in Å for lattice constant `a`.
    #[inline]
    pub fn position(self, a: f64) -> [f64; 3] {
        let h = a * 0.5;
        [self.x as f64 * h, self.y as f64 * h, self.z as f64 * h]
    }

    /// The eight first-nearest-neighbour offsets `(±1, ±1, ±1)` of the bcc
    /// lattice, in a fixed deterministic order.
    pub const FIRST_NN: [HalfVec; 8] = [
        HalfVec::new(-1, -1, -1),
        HalfVec::new(-1, -1, 1),
        HalfVec::new(-1, 1, -1),
        HalfVec::new(-1, 1, 1),
        HalfVec::new(1, -1, -1),
        HalfVec::new(1, -1, 1),
        HalfVec::new(1, 1, -1),
        HalfVec::new(1, 1, 1),
    ];
}

impl Add for HalfVec {
    type Output = HalfVec;
    #[inline]
    fn add(self, o: HalfVec) -> HalfVec {
        HalfVec::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for HalfVec {
    #[inline]
    fn add_assign(&mut self, o: HalfVec) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for HalfVec {
    type Output = HalfVec;
    #[inline]
    fn sub(self, o: HalfVec) -> HalfVec {
        HalfVec::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for HalfVec {
    type Output = HalfVec;
    #[inline]
    fn neg(self) -> HalfVec {
        HalfVec::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_nn_are_valid_offsets_of_length_root3() {
        for d in HalfVec::FIRST_NN {
            assert!(d.is_bcc_offset());
            assert_eq!(d.norm2(), 3);
        }
    }

    #[test]
    fn first_nn_swap_parity_class() {
        let even = HalfVec::new(2, 4, 6);
        for d in HalfVec::FIRST_NN {
            let n = even + d;
            assert!(n.is_bcc_site());
            assert_eq!(n.x & 1, 1, "1NN of a corner site is a body centre");
        }
    }

    #[test]
    fn length_uses_half_grid_units() {
        let a = 2.87;
        // 1NN distance of bcc is sqrt(3)/2 * a.
        let d = HalfVec::new(1, 1, 1).length(a);
        assert!((d - 3f64.sqrt() / 2.0 * a).abs() < 1e-12);
        // 2NN distance is a.
        let d2 = HalfVec::new(2, 0, 0).length(a);
        assert!((d2 - a).abs() < 1e-12);
    }

    #[test]
    fn parity_check_rejects_mixed_coordinates() {
        assert!(HalfVec::new(0, 0, 0).is_bcc_site());
        assert!(HalfVec::new(1, 1, 1).is_bcc_site());
        assert!(HalfVec::new(2, 2, 0).is_bcc_site());
        assert!(!HalfVec::new(1, 0, 0).is_bcc_site());
        assert!(!HalfVec::new(2, 1, 0).is_bcc_site());
        assert!(HalfVec::new(-1, 1, 3).is_bcc_site());
        assert!(HalfVec::new(-2, 0, 4).is_bcc_site());
    }

    #[test]
    fn vector_arithmetic() {
        let a = HalfVec::new(1, 2, 3);
        let b = HalfVec::new(-1, 0, 5);
        assert_eq!(a + b, HalfVec::new(0, 2, 8));
        assert_eq!(a - b, HalfVec::new(2, 2, -2));
        assert_eq!(-a, HalfVec::new(-1, -2, -3));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }
}
