//! Site occupants of the Fe–Cu alloy model.

/// What occupies a lattice site.
///
/// The paper's application system is the binary Fe–Cu alloy with a dilute
/// vacancy population; the vacancy is the kinetic carrier (paper §2.1).
/// One byte per site — this is the entire per-site state TensorKMC stores
/// (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Species {
    /// Host iron atom.
    Fe = 0,
    /// Copper solute atom.
    Cu = 1,
    /// A vacant lattice site.
    Vacancy = 2,
}

tensorkmc_compat::impl_json_enum!(Species { Fe, Cu, Vacancy });

/// Number of chemical elements (`N_el` in the paper): Fe and Cu.
/// The vacancy is not an element — it contributes nothing to features.
pub const N_ELEMENTS: usize = 2;

impl Species {
    /// All species, in discriminant order.
    pub const ALL: [Species; 3] = [Species::Fe, Species::Cu, Species::Vacancy];

    /// The element channel index used by the feature descriptor, or `None`
    /// for a vacancy (vacancies are invisible to the descriptor).
    #[inline]
    pub const fn element_index(self) -> Option<usize> {
        match self {
            Species::Fe => Some(0),
            Species::Cu => Some(1),
            Species::Vacancy => None,
        }
    }

    /// Whether the site holds a real atom.
    #[inline]
    pub const fn is_atom(self) -> bool {
        !matches!(self, Species::Vacancy)
    }

    /// Reference activation energy `E_a⁰` of the migrating atom in eV
    /// (paper §2.1: Fe 0.65 eV, Cu 0.56 eV). A vacancy never migrates "as a
    /// vacancy" in the rate law — the exchanged atom's barrier is used — so
    /// this returns `None` for a vacancy.
    #[inline]
    pub const fn reference_barrier_ev(self) -> Option<f64> {
        match self {
            Species::Fe => Some(0.65),
            Species::Cu => Some(0.56),
            Species::Vacancy => None,
        }
    }

    /// Round-trips a raw byte back to a species. Inverse of `self as u8`.
    #[inline]
    pub const fn from_u8(b: u8) -> Option<Species> {
        match b {
            0 => Some(Species::Fe),
            1 => Some(Species::Cu),
            2 => Some(Species::Vacancy),
            _ => None,
        }
    }

    /// Chemical symbol ("Fe", "Cu") or "X" for a vacancy; used by snapshot
    /// exporters.
    #[inline]
    pub const fn symbol(self) -> &'static str {
        match self {
            Species::Fe => "Fe",
            Species::Cu => "Cu",
            Species::Vacancy => "X",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        for s in Species::ALL {
            assert_eq!(Species::from_u8(s as u8), Some(s));
        }
        assert_eq!(Species::from_u8(3), None);
        assert_eq!(Species::from_u8(255), None);
    }

    #[test]
    fn element_channels() {
        assert_eq!(Species::Fe.element_index(), Some(0));
        assert_eq!(Species::Cu.element_index(), Some(1));
        assert_eq!(Species::Vacancy.element_index(), None);
        assert_eq!(N_ELEMENTS, 2);
    }

    #[test]
    fn paper_reference_barriers() {
        assert_eq!(Species::Fe.reference_barrier_ev(), Some(0.65));
        assert_eq!(Species::Cu.reference_barrier_ev(), Some(0.56));
        assert_eq!(Species::Vacancy.reference_barrier_ev(), None);
    }

    #[test]
    fn species_is_one_byte() {
        assert_eq!(std::mem::size_of::<Species>(), 1);
    }
}
