//! Species storage for a whole simulation box.

use crate::error::LatticeError;
use crate::ivec::HalfVec;
use crate::pbox::PeriodicBox;
use crate::species::Species;
use tensorkmc_compat::rng::Rng;
use tensorkmc_compat::rng::SliceRandom;

/// Composition of a randomly-mixed Fe–Cu alloy with vacancies.
///
/// The paper's application parameters (§4.1.2, §5): Cu 1.34 at.%,
/// vacancies 8×10⁻⁴ at.%.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlloyComposition {
    /// Copper atomic fraction (0..1).
    pub cu_fraction: f64,
    /// Vacancy site fraction (0..1).
    pub vacancy_fraction: f64,
}

tensorkmc_compat::impl_json_struct!(AlloyComposition {
    cu_fraction,
    vacancy_fraction
});

impl AlloyComposition {
    /// The paper's reactor-pressure-vessel steel surrogate:
    /// 1.34 at.% Cu, 8×10⁻⁴ at.% vacancies.
    pub const PAPER: AlloyComposition = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 8e-6,
    };

    /// Absolute counts for a box of `n_sites` sites. At least one vacancy is
    /// placed whenever `vacancy_fraction > 0` so dilute boxes still evolve.
    pub fn counts(&self, n_sites: usize) -> (usize, usize) {
        let n_cu = (self.cu_fraction * n_sites as f64).round() as usize;
        let mut n_vac = (self.vacancy_fraction * n_sites as f64).round() as usize;
        if self.vacancy_fraction > 0.0 && n_vac == 0 {
            n_vac = 1;
        }
        (n_cu, n_vac)
    }
}

/// Dense per-site species storage: exactly one byte per site, the full
/// per-site state of TensorKMC (paper §3.3 removes everything else).
#[derive(Debug, Clone)]
pub struct SiteArray {
    pbox: PeriodicBox,
    species: Vec<Species>,
}

tensorkmc_compat::impl_json_struct!(SiteArray { pbox, species });

impl SiteArray {
    /// A box filled entirely with Fe.
    pub fn pure_iron(pbox: PeriodicBox) -> Self {
        SiteArray {
            pbox,
            species: vec![Species::Fe; pbox.n_sites()],
        }
    }

    /// A random alloy: Cu and vacancies placed uniformly at random with the
    /// given composition, remaining sites Fe.
    pub fn random_alloy<R: Rng>(
        pbox: PeriodicBox,
        comp: AlloyComposition,
        rng: &mut R,
    ) -> Result<Self, LatticeError> {
        let n = pbox.n_sites();
        let (n_cu, n_vac) = comp.counts(n);
        if n_cu + n_vac > n {
            return Err(LatticeError::CompositionOverflow {
                sites: n,
                requested: n_cu + n_vac,
            });
        }
        let mut arr = SiteArray::pure_iron(pbox);
        // Partial Fisher-Yates: choose n_cu + n_vac distinct sites uniformly.
        // NB: partial_shuffle returns the uniformly-drawn sample as the
        // FIRST of the two returned slices; only that slice is a uniform
        // draw — reading fixed positions of `ids` instead would place
        // solutes at spatially contiguous low-index sites.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let (chosen, _) = ids.partial_shuffle(rng, n_cu + n_vac);
        for (j, &id) in chosen.iter().enumerate() {
            arr.species[id as usize] = if j < n_cu {
                Species::Cu
            } else {
                Species::Vacancy
            };
        }
        Ok(arr)
    }

    /// The periodic box.
    #[inline]
    pub fn pbox(&self) -> &PeriodicBox {
        &self.pbox
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// Whether the box has zero sites (never true for a valid box).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Species at linear site index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Species {
        self.species[i]
    }

    /// Sets the species at linear site index `i`.
    #[inline]
    pub fn set(&mut self, i: usize, s: Species) {
        self.species[i] = s;
    }

    /// Species at (periodically wrapped) half-grid coordinate `p`.
    #[inline]
    pub fn at(&self, p: HalfVec) -> Species {
        self.species[self.pbox.index(p)]
    }

    /// Sets the species at half-grid coordinate `p`.
    #[inline]
    pub fn set_at(&mut self, p: HalfVec, s: Species) {
        let i = self.pbox.index(p);
        self.species[i] = s;
    }

    /// Swaps the occupants of two sites (the elementary AKMC event).
    #[inline]
    pub fn swap(&mut self, p: HalfVec, q: HalfVec) {
        let (i, j) = (self.pbox.index(p), self.pbox.index(q));
        self.species.swap(i, j);
    }

    /// Raw species slice.
    #[inline]
    pub fn as_slice(&self) -> &[Species] {
        &self.species
    }

    /// Linear indices of all sites currently holding the given species.
    pub fn find_all(&self, s: Species) -> Vec<usize> {
        self.species
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| (x == s).then_some(i))
            .collect()
    }

    /// Counts per species `(n_fe, n_cu, n_vac)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut c = [0usize; 3];
        for &s in &self.species {
            c[s as usize] += 1;
        }
        (c[0], c[1], c[2])
    }

    /// Bytes of site storage (for the Table 1 memory accounting).
    #[inline]
    pub fn site_bytes(&self) -> usize {
        self.species.len() * std::mem::size_of::<Species>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorkmc_compat::rng::StdRng;

    fn small_box() -> PeriodicBox {
        PeriodicBox::new(6, 6, 6, 2.87).unwrap()
    }

    #[test]
    fn pure_iron_census() {
        let arr = SiteArray::pure_iron(small_box());
        let (fe, cu, vac) = arr.census();
        assert_eq!(fe, arr.len());
        assert_eq!(cu, 0);
        assert_eq!(vac, 0);
    }

    #[test]
    fn random_alloy_matches_requested_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        let comp = AlloyComposition {
            cu_fraction: 0.1,
            vacancy_fraction: 0.01,
        };
        let arr = SiteArray::random_alloy(small_box(), comp, &mut rng).unwrap();
        let n = arr.len();
        let (want_cu, want_vac) = comp.counts(n);
        let (_, cu, vac) = arr.census();
        assert_eq!(cu, want_cu);
        assert_eq!(vac, want_vac);
    }

    #[test]
    fn dilute_vacancy_gets_at_least_one() {
        let comp = AlloyComposition::PAPER;
        // 432 sites * 8e-6 rounds to 0 but we force 1.
        let (_, n_vac) = comp.counts(432);
        assert_eq!(n_vac, 1);
    }

    #[test]
    fn overflow_composition_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let comp = AlloyComposition {
            cu_fraction: 0.9,
            vacancy_fraction: 0.2,
        };
        assert!(matches!(
            SiteArray::random_alloy(small_box(), comp, &mut rng),
            Err(LatticeError::CompositionOverflow { .. })
        ));
    }

    #[test]
    fn swap_exchanges_occupants() {
        let mut arr = SiteArray::pure_iron(small_box());
        let p = HalfVec::new(0, 0, 0);
        let q = HalfVec::new(1, 1, 1);
        arr.set_at(p, Species::Vacancy);
        arr.set_at(q, Species::Cu);
        arr.swap(p, q);
        assert_eq!(arr.at(p), Species::Cu);
        assert_eq!(arr.at(q), Species::Vacancy);
    }

    #[test]
    fn find_all_locates_vacancies() {
        let mut rng = StdRng::seed_from_u64(3);
        let comp = AlloyComposition {
            cu_fraction: 0.05,
            vacancy_fraction: 0.02,
        };
        let arr = SiteArray::random_alloy(small_box(), comp, &mut rng).unwrap();
        let vacs = arr.find_all(Species::Vacancy);
        for &i in &vacs {
            assert_eq!(arr.get(i), Species::Vacancy);
        }
        let (_, _, n_vac) = arr.census();
        assert_eq!(vacs.len(), n_vac);
    }

    #[test]
    fn site_bytes_is_one_per_site() {
        let arr = SiteArray::pure_iron(small_box());
        assert_eq!(arr.site_bytes(), arr.len());
    }

    #[test]
    fn solutes_are_spatially_uniform_not_contiguous() {
        // Regression: only partial_shuffle's returned sample slice is a
        // uniform draw; reading fixed slice positions instead clumps all
        // solutes into low-index (spatially adjacent) sites.
        let mut rng = StdRng::seed_from_u64(77);
        let pbox = PeriodicBox::new(22, 22, 22, 2.87).unwrap();
        let comp = AlloyComposition {
            cu_fraction: 0.0,
            vacancy_fraction: 3e-4,
        };
        let arr = SiteArray::random_alloy(pbox, comp, &mut rng).unwrap();
        let vacs = arr.find_all(Species::Vacancy);
        assert!(vacs.len() >= 4, "need several vacancies for the check");
        // Mean pairwise min-image distance must be box-scale, not 1NN-scale.
        let mut total = 0.0;
        let mut pairs = 0;
        for (i, &a) in vacs.iter().enumerate() {
            for &b in &vacs[i + 1..] {
                let d = pbox.min_image(pbox.coords(a), pbox.coords(b));
                total += (d.norm2() as f64).sqrt();
                pairs += 1;
            }
        }
        let mean = total / pairs as f64;
        assert!(
            mean > 8.0,
            "mean pairwise vacancy distance {mean} half-units is clumped"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let comp = AlloyComposition {
            cu_fraction: 0.1,
            vacancy_fraction: 0.01,
        };
        let a = SiteArray::random_alloy(small_box(), comp, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = SiteArray::random_alloy(small_box(), comp, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
