//! Ghost-aware site indexing — paper Eq. (4).
//!
//! A parallel subdomain owns an interior block of sites plus a surrounding
//! *ghost* shell mirroring its neighbours' boundary sites. The `lattice`
//! array stores the `N` interior sites first, followed by the ghost sites
//! (paper Fig. 5c).
//!
//! OpenKMC resolves a coordinate to its array slot through a dense `POS_ID`
//! array covering the whole (extended) grid — a memory hog with many wasted
//! cells (Fig. 5b). TensorKMC instead computes the slot *directly*:
//!
//! ```text
//! index = N + nghost(x,y,z)          if (x,y,z) in ghost
//!       = ID(x,y,z) - nghost(x,y,z)  otherwise            (Eq. 4)
//! ```
//!
//! where `ID` is the raster-traversal ordinal of the site within the extended
//! block and `nghost` counts the ghost sites preceding it. Both are O(1)
//! arithmetic here, so the indexer needs constant memory regardless of the
//! domain size. [`PosIdIndexer`] is the OpenKMC-style baseline kept for the
//! Table 1 memory comparison.

use crate::error::LatticeError;
use crate::ivec::HalfVec;

#[inline]
fn floor_div(a: i64, b: i64) -> i64 {
    a.div_euclid(b)
}

/// Number of even integers in the half-open range `[a, b)`.
#[inline]
fn evens_in(a: i64, b: i64) -> i64 {
    if b <= a {
        0
    } else {
        floor_div(b + 1, 2) - floor_div(a + 1, 2)
    }
}

/// Number of odd integers in the half-open range `[a, b)`.
#[inline]
fn odds_in(a: i64, b: i64) -> i64 {
    if b <= a {
        0
    } else {
        floor_div(b, 2) - floor_div(a, 2)
    }
}

/// Counts bcc sites (both parity classes) inside the half-open box
/// `[x0,x1) × [y0,y1) × [z0,z1)` of half-grid coordinates.
fn count_box(x0: i64, x1: i64, y0: i64, y1: i64, z0: i64, z1: i64) -> i64 {
    evens_in(x0, x1) * evens_in(y0, y1) * evens_in(z0, z1)
        + odds_in(x0, x1) * odds_in(y0, y1) * odds_in(z0, z1)
}

/// Common interface of the two site-indexing strategies so the AKMC engine is
/// generic over them.
pub trait SiteIndexer {
    /// Array slot of the site at `p`, or `None` outside the extended block.
    fn slot(&self, p: HalfVec) -> Option<usize>;
    /// Number of interior sites.
    fn n_local(&self) -> usize;
    /// Number of ghost sites.
    fn n_ghost(&self) -> usize;
    /// Bytes of auxiliary memory this indexer itself needs (the quantity
    /// compared in paper Table 1).
    fn aux_bytes(&self) -> usize;
}

/// O(1)-memory direct index computation (TensorKMC, Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalIndexer {
    /// Inclusive lower corner of the interior block (half-grid, global).
    lo: HalfVec,
    /// Exclusive upper corner of the interior block.
    hi: HalfVec,
    /// Ghost width in half-grid units on every face.
    ghost: i32,
    n_local: usize,
    n_ghost: usize,
}

impl LocalIndexer {
    /// Builds an indexer for the interior block `[lo, hi)` with a ghost shell
    /// of `ghost` half-grid layers.
    pub fn new(lo: HalfVec, hi: HalfVec, ghost: i32) -> Result<Self, LatticeError> {
        if ghost < 0 || hi.x <= lo.x || hi.y <= lo.y || hi.z <= lo.z {
            return Err(LatticeError::GhostTooWide {
                ghost,
                extent: (hi.x - lo.x, hi.y - lo.y, hi.z - lo.z),
            });
        }
        let n_local = count_box(
            lo.x as i64,
            hi.x as i64,
            lo.y as i64,
            hi.y as i64,
            lo.z as i64,
            hi.z as i64,
        ) as usize;
        let g = ghost as i64;
        let n_total = count_box(
            lo.x as i64 - g,
            hi.x as i64 + g,
            lo.y as i64 - g,
            hi.y as i64 + g,
            lo.z as i64 - g,
            hi.z as i64 + g,
        ) as usize;
        Ok(LocalIndexer {
            lo,
            hi,
            ghost,
            n_local,
            n_ghost: n_total - n_local,
        })
    }

    /// Interior block `[lo, hi)`.
    #[inline]
    pub fn interior(&self) -> (HalfVec, HalfVec) {
        (self.lo, self.hi)
    }

    /// Ghost width in half-grid layers.
    #[inline]
    pub fn ghost_width(&self) -> i32 {
        self.ghost
    }

    /// Whether `p` lies in the interior block.
    #[inline]
    pub fn contains_interior(&self, p: HalfVec) -> bool {
        p.x >= self.lo.x
            && p.x < self.hi.x
            && p.y >= self.lo.y
            && p.y < self.hi.y
            && p.z >= self.lo.z
            && p.z < self.hi.z
    }

    /// Whether `p` lies in the extended (interior + ghost) block.
    #[inline]
    pub fn contains_extended(&self, p: HalfVec) -> bool {
        let g = self.ghost;
        p.x >= self.lo.x - g
            && p.x < self.hi.x + g
            && p.y >= self.lo.y - g
            && p.y < self.hi.y + g
            && p.z >= self.lo.z - g
            && p.z < self.hi.z + g
    }

    /// Raster-traversal ordinal of site `p` within the extended block
    /// (`ID(x,y,z)` in Eq. 4). Lexicographic on `(x, y, z)`.
    fn traversal_id(&self, p: HalfVec) -> usize {
        let g = self.ghost as i64;
        let (x0, y0, z0) = (
            self.lo.x as i64 - g,
            self.lo.y as i64 - g,
            self.lo.z as i64 - g,
        );
        let (y1, z1) = (self.hi.y as i64 + g, self.hi.z as i64 + g);
        let (px, py, pz) = (p.x as i64, p.y as i64, p.z as i64);
        let planes = count_box(x0, px, y0, y1, z0, z1);
        let rows = count_box(px, px + 1, y0, py, z0, z1);
        let cells = count_box(px, px + 1, py, py + 1, z0, pz);
        (planes + rows + cells) as usize
    }

    /// Number of *interior* sites preceding `p` in the traversal.
    fn interior_before(&self, p: HalfVec) -> usize {
        let (ix0, iy0, iz0) = (self.lo.x as i64, self.lo.y as i64, self.lo.z as i64);
        let (ix1, iy1, iz1) = (self.hi.x as i64, self.hi.y as i64, self.hi.z as i64);
        let (px, py, pz) = (p.x as i64, p.y as i64, p.z as i64);
        let planes = count_box(ix0, px.min(ix1), iy0, iy1, iz0, iz1);
        let mut total = planes;
        if px >= ix0 && px < ix1 {
            total += count_box(px, px + 1, iy0, py.min(iy1), iz0, iz1);
            if py >= iy0 && py < iy1 {
                total += count_box(px, px + 1, py, py + 1, iz0, pz.min(iz1).max(iz0));
            }
        }
        total as usize
    }

    /// Number of ghost sites preceding `p` in the traversal
    /// (`nghost(x,y,z)` in Eq. 4).
    #[inline]
    pub fn nghost_before(&self, p: HalfVec) -> usize {
        self.traversal_id(p) - self.interior_before(p)
    }
}

impl SiteIndexer for LocalIndexer {
    fn slot(&self, p: HalfVec) -> Option<usize> {
        if !p.is_bcc_site() || !self.contains_extended(p) {
            return None;
        }
        let ng = self.nghost_before(p);
        Some(if self.contains_interior(p) {
            // Eq. 4, interior branch: ID(x,y,z) - nghost(x,y,z).
            self.traversal_id(p) - ng
        } else {
            // Eq. 4, ghost branch: N + nghost(x,y,z).
            self.n_local + ng
        })
    }

    #[inline]
    fn n_local(&self) -> usize {
        self.n_local
    }

    #[inline]
    fn n_ghost(&self) -> usize {
        self.n_ghost
    }

    #[inline]
    fn aux_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// OpenKMC-style `POS_ID` lookup table (paper Fig. 5b): a dense array over the
/// full extended half-grid, including the wasted cells at invalid-parity
/// positions. Kept as the baseline for the Table 1 memory comparison.
#[derive(Debug, Clone)]
pub struct PosIdIndexer {
    lo: HalfVec,
    ext: (i32, i32, i32),
    pos_id: Vec<i32>,
    n_local: usize,
    n_ghost: usize,
}

impl PosIdIndexer {
    /// Builds the dense table for the same block layout as [`LocalIndexer`],
    /// and with identical slot assignment.
    pub fn new(lo: HalfVec, hi: HalfVec, ghost: i32) -> Result<Self, LatticeError> {
        let direct = LocalIndexer::new(lo, hi, ghost)?;
        let g = ghost;
        let lo_e = HalfVec::new(lo.x - g, lo.y - g, lo.z - g);
        let ext = (hi.x + g - lo_e.x, hi.y + g - lo_e.y, hi.z + g - lo_e.z);
        let vol = ext.0 as usize * ext.1 as usize * ext.2 as usize;
        let mut pos_id = vec![-1i32; vol];
        for x in lo_e.x..hi.x + g {
            for y in lo_e.y..hi.y + g {
                for z in lo_e.z..hi.z + g {
                    let p = HalfVec::new(x, y, z);
                    if !p.is_bcc_site() {
                        continue;
                    }
                    let flat = (((x - lo_e.x) as usize * ext.1 as usize) + (y - lo_e.y) as usize)
                        * ext.2 as usize
                        + (z - lo_e.z) as usize;
                    pos_id[flat] = direct.slot(p).expect("in extended block") as i32;
                }
            }
        }
        Ok(PosIdIndexer {
            lo: lo_e,
            ext,
            pos_id,
            n_local: direct.n_local(),
            n_ghost: direct.n_ghost(),
        })
    }
}

impl SiteIndexer for PosIdIndexer {
    fn slot(&self, p: HalfVec) -> Option<usize> {
        let (dx, dy, dz) = (p.x - self.lo.x, p.y - self.lo.y, p.z - self.lo.z);
        if dx < 0 || dy < 0 || dz < 0 || dx >= self.ext.0 || dy >= self.ext.1 || dz >= self.ext.2 {
            return None;
        }
        let flat =
            ((dx as usize * self.ext.1 as usize) + dy as usize) * self.ext.2 as usize + dz as usize;
        match self.pos_id[flat] {
            -1 => None,
            id => Some(id as usize),
        }
    }

    #[inline]
    fn n_local(&self) -> usize {
        self.n_local
    }

    #[inline]
    fn n_ghost(&self) -> usize {
        self.n_ghost
    }

    #[inline]
    fn aux_bytes(&self) -> usize {
        self.pos_id.len() * std::mem::size_of::<i32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_extended_sites(lo: HalfVec, hi: HalfVec, g: i32) -> Vec<HalfVec> {
        let mut v = Vec::new();
        for x in lo.x - g..hi.x + g {
            for y in lo.y - g..hi.y + g {
                for z in lo.z - g..hi.z + g {
                    let p = HalfVec::new(x, y, z);
                    if p.is_bcc_site() {
                        v.push(p);
                    }
                }
            }
        }
        v
    }

    #[test]
    fn counting_helpers() {
        assert_eq!(evens_in(0, 5), 3);
        assert_eq!(odds_in(0, 5), 2);
        assert_eq!(evens_in(-3, 3), 3); // -2, 0, 2
        assert_eq!(odds_in(-3, 3), 3); // -3, -1, 1
        assert_eq!(evens_in(4, 4), 0);
        assert_eq!(count_box(0, 2, 0, 2, 0, 2), 2); // (0,0,0) and (1,1,1)
    }

    #[test]
    fn eq4_layout_interior_first_then_ghosts() {
        let lo = HalfVec::new(0, 0, 0);
        let hi = HalfVec::new(6, 4, 4);
        let ix = LocalIndexer::new(lo, hi, 2).unwrap();
        let sites = all_extended_sites(lo, hi, 2);
        assert_eq!(sites.len(), ix.n_local() + ix.n_ghost());
        let mut seen = vec![false; sites.len()];
        for p in &sites {
            let s = ix.slot(*p).unwrap();
            assert!(!seen[s], "slot {s} assigned twice");
            seen[s] = true;
            if ix.contains_interior(*p) {
                assert!(s < ix.n_local(), "interior site got ghost slot");
            } else {
                assert!(s >= ix.n_local(), "ghost site got interior slot");
            }
        }
        assert!(seen.iter().all(|&b| b), "slots are a bijection");
    }

    #[test]
    fn direct_indexer_matches_pos_id_baseline() {
        let lo = HalfVec::new(-2, 0, 2);
        let hi = HalfVec::new(4, 6, 8);
        let direct = LocalIndexer::new(lo, hi, 3).unwrap();
        let table = PosIdIndexer::new(lo, hi, 3).unwrap();
        for p in all_extended_sites(lo, hi, 3) {
            assert_eq!(direct.slot(p), table.slot(p), "at {p:?}");
        }
        assert_eq!(direct.n_local(), table.n_local());
        assert_eq!(direct.n_ghost(), table.n_ghost());
    }

    #[test]
    fn direct_indexer_memory_is_constant_pos_id_is_volumetric() {
        let small = LocalIndexer::new(HalfVec::ZERO, HalfVec::new(4, 4, 4), 2).unwrap();
        let large = LocalIndexer::new(HalfVec::ZERO, HalfVec::new(40, 40, 40), 2).unwrap();
        assert_eq!(small.aux_bytes(), large.aux_bytes());

        let t_small = PosIdIndexer::new(HalfVec::ZERO, HalfVec::new(4, 4, 4), 2).unwrap();
        let t_large = PosIdIndexer::new(HalfVec::ZERO, HalfVec::new(16, 16, 16), 2).unwrap();
        assert!(t_large.aux_bytes() > 8 * t_small.aux_bytes());
    }

    #[test]
    fn out_of_block_and_bad_parity_are_none() {
        let ix = LocalIndexer::new(HalfVec::ZERO, HalfVec::new(4, 4, 4), 1).unwrap();
        assert_eq!(ix.slot(HalfVec::new(100, 0, 0)), None);
        assert_eq!(ix.slot(HalfVec::new(1, 0, 0)), None); // bad parity
        assert_eq!(ix.slot(HalfVec::new(-2, 0, 0)), None); // beyond ghost
        assert!(ix.slot(HalfVec::new(-1, 1, 1)).is_some()); // in ghost shell
    }

    #[test]
    fn degenerate_blocks_rejected() {
        assert!(LocalIndexer::new(HalfVec::ZERO, HalfVec::ZERO, 1).is_err());
        assert!(LocalIndexer::new(HalfVec::ZERO, HalfVec::new(4, 4, 4), -1).is_err());
    }

    #[test]
    fn zero_ghost_width_is_valid() {
        let ix = LocalIndexer::new(HalfVec::ZERO, HalfVec::new(4, 4, 4), 0).unwrap();
        assert_eq!(ix.n_ghost(), 0);
        let sites = all_extended_sites(HalfVec::ZERO, HalfVec::new(4, 4, 4), 0);
        assert_eq!(ix.n_local(), sites.len());
    }
}
