//! Vacancy-system geometry — the shape half of the triple-encoding tabulation
//! (paper §3.1).
//!
//! A vacancy hop only changes the energies of the sites whose neighbour
//! environment changes: the vacancy site itself, its eight 1NN sites, and
//! every neighbour of those nine sites. Those `N_region` sites form the
//! *jump region*. Their neighbours that fall outside the region (`N_out`
//! sites) enter the region sites' feature sums but never change energy, so a
//! vacancy system comprises `N_all = N_region + N_out` sites in total.
//!
//! Because every bcc site is geometrically equivalent, this shape is computed
//! **once** per `(a, r_cut)` and shared by every vacancy in the simulation:
//!
//! * the relative coordinates of all `N_all` sites — the paper's **CET**;
//! * the per-region-site neighbour lists (site id + distance shell) — the
//!   paper's **NET**.
//!
//! The occupancy vector (**VET**) is per-vacancy state and lives in the AKMC
//! engine crate.

use crate::error::LatticeError;
use crate::ivec::HalfVec;
use crate::shells::ShellTable;
use std::collections::HashMap;

/// A neighbour entry of the NET: the neighbour's id within the vacancy
/// system, and the shell its distance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetEntry {
    /// Index into [`RegionGeometry::sites`] (CET row) of the neighbour.
    pub site: u32,
    /// Distance shell index into the [`ShellTable`].
    pub shell: u8,
}

tensorkmc_compat::impl_json_struct!(NetEntry { site, shell });

/// The shared geometric tabulations (CET + NET) of a vacancy system.
#[derive(Debug, Clone)]
pub struct RegionGeometry {
    /// The shell table this geometry was built from.
    pub shells: ShellTable,
    /// CET: relative half-grid coordinates of every site of the vacancy
    /// system. Layout contract:
    /// * `sites[0]` is the vacancy (the origin);
    /// * `sites[1..=8]` are the eight 1NN sites, in [`HalfVec::FIRST_NN`]
    ///   order — the possible final states of a hop;
    /// * `sites[..n_region]` are the jump-region sites (energies change);
    /// * `sites[n_region..]` are the outer sites (environment only).
    pub sites: Vec<HalfVec>,
    /// Number of jump-region sites (`N_region`).
    pub n_region: usize,
    /// NET: for each of the first `n_region` sites, its neighbours within the
    /// cutoff, each a `(site id, shell)` pair. Every neighbour of a region
    /// site is guaranteed to be inside the vacancy system.
    pub neighbors: Vec<Vec<NetEntry>>,
    /// Reverse map from relative coordinate to CET row.
    index: HashMap<HalfVec, u32>,
}

// `index` is derived data: skipped on encode, empty after decode until
// [`RegionGeometry::rebuild_index`] repopulates it.
tensorkmc_compat::impl_json_struct!(RegionGeometry {
    shells,
    sites,
    n_region,
    neighbors,
    @skip index,
});

impl RegionGeometry {
    /// Builds the vacancy-system geometry for lattice constant `a` (Å) and
    /// cutoff `rcut` (Å).
    ///
    /// For the paper's parameters (`a = 2.87`, `rcut = 6.5`) this produces
    /// `N_region = 253` and `N_local = 112` (paper §4.1.1).
    pub fn new(a: f64, rcut: f64) -> Result<Self, LatticeError> {
        let shells = ShellTable::new(a, rcut)?;

        // Jump region: origin, 1NN sites, then every neighbour of those nine,
        // deduplicated, in a deterministic order.
        let mut sites: Vec<HalfVec> = Vec::new();
        let mut index: HashMap<HalfVec, u32> = HashMap::new();
        let push = |sites: &mut Vec<HalfVec>, index: &mut HashMap<HalfVec, u32>, p: HalfVec| {
            index.entry(p).or_insert_with(|| {
                sites.push(p);
                (sites.len() - 1) as u32
            });
        };
        push(&mut sites, &mut index, HalfVec::ZERO);
        for d in HalfVec::FIRST_NN {
            push(&mut sites, &mut index, d);
        }
        for center in [HalfVec::ZERO]
            .into_iter()
            .chain(HalfVec::FIRST_NN)
            .collect::<Vec<_>>()
        {
            for o in &shells.offsets {
                push(&mut sites, &mut index, center + o.dv);
            }
        }
        let n_region = sites.len();

        // Outer sites: neighbours of region sites not already in the region.
        for ri in 0..n_region {
            let base = sites[ri];
            for o in &shells.offsets {
                push(&mut sites, &mut index, base + o.dv);
            }
        }

        // NET for the region sites. By construction every neighbour is in
        // `sites`.
        let mut neighbors = Vec::with_capacity(n_region);
        #[allow(clippy::needless_range_loop)] // row index doubles as CET id
        for ri in 0..n_region {
            let base = sites[ri];
            let mut list = Vec::with_capacity(shells.n_local());
            for o in &shells.offsets {
                let id = index[&(base + o.dv)];
                list.push(NetEntry {
                    site: id,
                    shell: o.shell,
                });
            }
            neighbors.push(list);
        }

        Ok(RegionGeometry {
            shells,
            sites,
            n_region,
            neighbors,
            index,
        })
    }

    /// Rebuilds the reverse coordinate map after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .sites
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect();
    }

    /// Total number of sites of the vacancy system (`N_all`).
    #[inline]
    pub fn n_all(&self) -> usize {
        self.sites.len()
    }

    /// Number of jump-region sites (`N_region`).
    #[inline]
    pub fn n_region(&self) -> usize {
        self.n_region
    }

    /// Number of outer environment sites (`N_out`).
    #[inline]
    pub fn n_out(&self) -> usize {
        self.sites.len() - self.n_region
    }

    /// Number of neighbours per site (`N_local`).
    #[inline]
    pub fn n_local(&self) -> usize {
        self.shells.n_local()
    }

    /// CET row of a relative coordinate, if it belongs to the vacancy system.
    #[inline]
    pub fn site_id(&self, rel: HalfVec) -> Option<u32> {
        self.index.get(&rel).copied()
    }

    /// The CET row holding the 1NN site in jump direction `k` (`0..8`).
    /// This is the site the vacancy exchanges with for final state `k`.
    #[inline]
    pub fn first_nn_id(&self, k: usize) -> u32 {
        debug_assert!(k < 8);
        (k + 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_geometry() -> RegionGeometry {
        RegionGeometry::new(2.87, 6.5).unwrap()
    }

    #[test]
    fn paper_region_counts() {
        // §4.1.1: N_region = 253, N_local = 112 at rcut = 6.5 Å.
        let g = paper_geometry();
        assert_eq!(g.n_region(), 253);
        assert_eq!(g.n_local(), 112);
        assert_eq!(g.n_all(), g.n_region() + g.n_out());
        assert_eq!(g.n_all(), 1181);
    }

    #[test]
    fn layout_contract_origin_then_first_nn() {
        let g = paper_geometry();
        assert_eq!(g.sites[0], HalfVec::ZERO);
        for (k, d) in HalfVec::FIRST_NN.iter().enumerate() {
            assert_eq!(g.sites[k + 1], *d);
            assert_eq!(g.first_nn_id(k), (k + 1) as u32);
        }
    }

    #[test]
    fn net_rows_have_n_local_entries_each() {
        let g = paper_geometry();
        assert_eq!(g.neighbors.len(), g.n_region());
        for row in &g.neighbors {
            assert_eq!(row.len(), g.n_local());
        }
    }

    #[test]
    fn net_entries_consistent_with_geometry() {
        let g = paper_geometry();
        for (ri, row) in g.neighbors.iter().enumerate() {
            let base = g.sites[ri];
            for e in row {
                let dv = g.sites[e.site as usize] - base;
                assert_eq!(
                    g.shells.shell_of(dv),
                    Some(e.shell),
                    "NET shell mismatch at region site {ri}"
                );
            }
        }
    }

    #[test]
    fn region_closed_under_first_nn_neighbourhoods() {
        // Every neighbour of the origin or of a 1NN site must be a region site.
        let g = paper_geometry();
        for center in [HalfVec::ZERO].into_iter().chain(HalfVec::FIRST_NN) {
            for o in &g.shells.offsets {
                let id = g.site_id(center + o.dv).expect("in system") as usize;
                assert!(id < g.n_region(), "neighbour of hop pair outside region");
            }
        }
    }

    #[test]
    fn site_id_round_trip() {
        let g = paper_geometry();
        for (i, p) in g.sites.iter().enumerate() {
            assert_eq!(g.site_id(*p), Some(i as u32));
        }
        assert_eq!(g.site_id(HalfVec::new(99, 99, 99)), None);
    }

    #[test]
    fn outer_sites_never_neighbour_rows() {
        let g = paper_geometry();
        // NET only covers region sites: out sites' energies never change, so
        // their neighbour lists are never needed.
        assert_eq!(g.neighbors.len(), g.n_region());
    }

    #[test]
    fn short_cutoff_shrinks_system() {
        let g65 = paper_geometry();
        let g58 = RegionGeometry::new(2.87, 5.8).unwrap();
        assert!(g58.n_region() < g65.n_region());
        assert!(g58.n_all() < g65.n_all());
        assert_eq!(g58.n_local(), 64);
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        // empty index until rebuild_index is called; emulate by clearing it.
        let g = paper_geometry();
        let mut g2 = g.clone();
        g2.index.clear();
        g2.rebuild_index();
        for (i, p) in g2.sites.iter().enumerate() {
            assert_eq!(g2.site_id(*p), Some(i as u32));
        }
    }
}
