//! Body-centred-cubic lattice substrate for TensorKMC.
//!
//! This crate provides the geometric foundation the AKMC engine is built on:
//!
//! * [`Species`] — the site occupants of the Fe–Cu alloy model (Fe, Cu, vacancy);
//! * [`HalfVec`] — integer coordinates on the *half-grid*: a bcc lattice with
//!   lattice constant `a` is represented as the set of points `(i, j, k) · a/2`
//!   with `i ≡ j ≡ k (mod 2)` (cube corners are the all-even class, body
//!   centres the all-odd class);
//! * [`ShellTable`] — the discrete neighbour shells within a cutoff radius.
//!   Interatomic distances in AKMC are discretely distributed (paper §3.4),
//!   which is what makes the tabulated feature operator possible;
//! * [`PeriodicBox`] — a periodic simulation box with O(1) site indexing;
//! * [`LocalIndexer`] — the ghost-aware direct index computation of paper
//!   Eq. (4) that replaces OpenKMC's memory-hungry `POS_ID` array;
//! * [`RegionGeometry`] — the geometry half of the triple-encoding tabulation
//!   (paper §3.1): the CET (relative coordinates of every site of a vacancy
//!   system) and the NET (neighbour lists of the jump-region sites);
//! * [`SiteArray`] — species storage for a whole box plus alloy initialisation.
//!
//! The numbers the paper quotes for the Fe–Cu system (`a = 2.87 Å`,
//! `r_cut = 6.5 Å`) — `N_local = 112` neighbours and `N_region = 253` jump-region
//! sites — are asserted by this crate's tests.

pub mod error;
pub mod ghost;
pub mod ivec;
pub mod pbox;
pub mod region;
pub mod shells;
pub mod species;
pub mod storage;

pub use error::LatticeError;
pub use ghost::{LocalIndexer, PosIdIndexer, SiteIndexer};
pub use ivec::HalfVec;
pub use pbox::PeriodicBox;
pub use region::RegionGeometry;
pub use shells::{NeighborOffset, Shell, ShellTable};
pub use species::Species;
pub use storage::{AlloyComposition, SiteArray};

/// Lattice constant of bcc iron used throughout the paper, in Å.
pub const FE_LATTICE_CONSTANT: f64 = 2.87;

/// The standard cutoff radius used by the paper for the Fe–Cu system, in Å.
pub const STANDARD_CUTOFF: f64 = 6.5;

/// The shorter cutoff used in the paper's Fig. 11 serial comparison, in Å.
pub const SHORT_CUTOFF: f64 = 5.8;

/// Number of first-nearest-neighbour jump directions on the bcc lattice.
pub const N_FIRST_NN: usize = 8;
