//! Error types for lattice construction and indexing.

use std::fmt;

/// Errors produced while building or addressing lattices.
#[derive(Debug, Clone, PartialEq)]
pub enum LatticeError {
    /// A box dimension was zero or would overflow the index space.
    InvalidBoxDimensions {
        /// Requested unit-cell extents.
        nx: i32,
        /// Requested unit-cell extents.
        ny: i32,
        /// Requested unit-cell extents.
        nz: i32,
    },
    /// The cutoff radius is too small to contain even the first shell.
    CutoffTooSmall {
        /// Requested cutoff in Å.
        rcut: f64,
        /// Minimum usable cutoff (the 1NN distance) in Å.
        min: f64,
    },
    /// A half-grid coordinate violates the bcc parity constraint
    /// `i ≡ j ≡ k (mod 2)`.
    ParityViolation {
        /// The offending coordinate.
        coord: (i32, i32, i32),
    },
    /// The ghost width does not leave a non-empty interior.
    GhostTooWide {
        /// Requested ghost width (half-grid units).
        ghost: i32,
        /// Local extent (half-grid units) that cannot accommodate it.
        extent: (i32, i32, i32),
    },
    /// The alloy composition does not fit in the box (too many solutes or
    /// vacancies).
    CompositionOverflow {
        /// Sites available.
        sites: usize,
        /// Sites requested by the composition.
        requested: usize,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::InvalidBoxDimensions { nx, ny, nz } => {
                write!(f, "invalid box dimensions {nx}x{ny}x{nz} unit cells")
            }
            LatticeError::CutoffTooSmall { rcut, min } => {
                write!(f, "cutoff {rcut} Å is below the 1NN distance {min} Å")
            }
            LatticeError::ParityViolation { coord } => {
                write!(
                    f,
                    "half-grid coordinate {coord:?} violates bcc parity (i≡j≡k mod 2)"
                )
            }
            LatticeError::GhostTooWide { ghost, extent } => {
                write!(
                    f,
                    "ghost width {ghost} leaves no interior in local extent {extent:?}"
                )
            }
            LatticeError::CompositionOverflow { sites, requested } => {
                write!(
                    f,
                    "alloy composition requests {requested} sites but the box has only {sites}"
                )
            }
        }
    }
}

impl std::error::Error for LatticeError {}
