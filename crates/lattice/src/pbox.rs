//! Periodic simulation box with O(1) site indexing.

use crate::error::LatticeError;
use crate::ivec::HalfVec;

/// A periodic bcc simulation box of `nx × ny × nz` cubic unit cells.
///
/// Each unit cell carries two sites (corner + body centre), so the box holds
/// `2 · nx · ny · nz` sites. Sites are addressed either by half-grid
/// coordinates `(i, j, k)` (wrapped periodically into `[0, 2n)` per axis) or
/// by a dense linear index, with O(1) conversion in both directions — this is
/// the arithmetic that lets TensorKMC drop the `POS_ID` array (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicBox {
    nx: i32,
    ny: i32,
    nz: i32,
    /// Lattice constant in Å.
    a_milli: u64,
}

tensorkmc_compat::impl_json_struct!(PeriodicBox {
    nx,
    ny,
    nz,
    a_milli
});

impl PeriodicBox {
    /// Creates a box of `nx × ny × nz` unit cells with lattice constant `a` Å.
    pub fn new(nx: i32, ny: i32, nz: i32, a: f64) -> Result<Self, LatticeError> {
        if nx <= 0 || ny <= 0 || nz <= 0 {
            return Err(LatticeError::InvalidBoxDimensions { nx, ny, nz });
        }
        let sites = (nx as i64)
            .checked_mul(ny as i64)
            .and_then(|v| v.checked_mul(nz as i64))
            .and_then(|v| v.checked_mul(2));
        match sites {
            Some(s) if s <= u32::MAX as i64 => {}
            _ => return Err(LatticeError::InvalidBoxDimensions { nx, ny, nz }),
        }
        Ok(PeriodicBox {
            nx,
            ny,
            nz,
            a_milli: (a * 1e6).round() as u64,
        })
    }

    /// Lattice constant in Å.
    #[inline]
    pub fn a(&self) -> f64 {
        self.a_milli as f64 * 1e-6
    }

    /// Unit-cell extents.
    #[inline]
    pub fn cells(&self) -> (i32, i32, i32) {
        (self.nx, self.ny, self.nz)
    }

    /// Half-grid extents (`2n` per axis).
    #[inline]
    pub fn extent(&self) -> (i32, i32, i32) {
        (2 * self.nx, 2 * self.ny, 2 * self.nz)
    }

    /// Total number of sites.
    #[inline]
    pub fn n_sites(&self) -> usize {
        2 * (self.nx as usize) * (self.ny as usize) * (self.nz as usize)
    }

    /// Edge lengths in Å.
    #[inline]
    pub fn lengths(&self) -> [f64; 3] {
        let a = self.a();
        [self.nx as f64 * a, self.ny as f64 * a, self.nz as f64 * a]
    }

    /// Box volume in m³ (useful for number densities, paper §5).
    #[inline]
    pub fn volume_m3(&self) -> f64 {
        let [lx, ly, lz] = self.lengths();
        lx * ly * lz * 1e-30
    }

    /// Wraps a half-grid coordinate into the canonical cell `[0, 2n)³`.
    #[inline]
    pub fn wrap(&self, v: HalfVec) -> HalfVec {
        HalfVec::new(
            v.x.rem_euclid(2 * self.nx),
            v.y.rem_euclid(2 * self.ny),
            v.z.rem_euclid(2 * self.nz),
        )
    }

    /// Minimum-image displacement from `from` to `to`, in half-grid units.
    pub fn min_image(&self, from: HalfVec, to: HalfVec) -> HalfVec {
        let (ex, ey, ez) = self.extent();
        let wrap1 = |d: i32, e: i32| {
            let d = d.rem_euclid(e);
            if d > e / 2 {
                d - e
            } else {
                d
            }
        };
        let d = to - from;
        HalfVec::new(wrap1(d.x, ex), wrap1(d.y, ey), wrap1(d.z, ez))
    }

    /// Linear index of the (wrapped) site at `v`.
    ///
    /// # Panics
    /// Panics in debug builds if `v` violates the bcc parity constraint.
    #[inline]
    pub fn index(&self, v: HalfVec) -> usize {
        let w = self.wrap(v);
        debug_assert!(w.is_bcc_site(), "non-bcc coordinate {w:?}");
        let s = (w.x & 1) as usize; // 0 = corner sublattice, 1 = body centre
        let cx = (w.x >> 1) as usize;
        let cy = (w.y >> 1) as usize;
        let cz = (w.z >> 1) as usize;
        (((cx * self.ny as usize) + cy) * self.nz as usize + cz) * 2 + s
    }

    /// Checked variant of [`Self::index`] that reports parity violations.
    pub fn try_index(&self, v: HalfVec) -> Result<usize, LatticeError> {
        if !v.is_bcc_site() {
            return Err(LatticeError::ParityViolation {
                coord: (v.x, v.y, v.z),
            });
        }
        Ok(self.index(v))
    }

    /// Half-grid coordinates of the site with linear index `i`.
    #[inline]
    pub fn coords(&self, i: usize) -> HalfVec {
        debug_assert!(i < self.n_sites());
        let s = (i & 1) as i32;
        let c = i >> 1;
        let cz = (c % self.nz as usize) as i32;
        let c = c / self.nz as usize;
        let cy = (c % self.ny as usize) as i32;
        let cx = (c / self.ny as usize) as i32;
        HalfVec::new(2 * cx + s, 2 * cy + s, 2 * cz + s)
    }

    /// Iterates over all site coordinates in index order.
    pub fn iter_sites(&self) -> impl Iterator<Item = HalfVec> + '_ {
        (0..self.n_sites()).map(move |i| self.coords(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_count_is_two_per_cell() {
        let b = PeriodicBox::new(4, 5, 6, 2.87).unwrap();
        assert_eq!(b.n_sites(), 2 * 4 * 5 * 6);
    }

    #[test]
    fn index_coords_round_trip() {
        let b = PeriodicBox::new(3, 4, 5, 2.87).unwrap();
        for i in 0..b.n_sites() {
            let v = b.coords(i);
            assert!(v.is_bcc_site());
            assert_eq!(b.index(v), i);
        }
    }

    #[test]
    fn wrapping_is_periodic() {
        let b = PeriodicBox::new(3, 3, 3, 2.87).unwrap();
        let v = HalfVec::new(1, 1, 1);
        let shifted = HalfVec::new(1 + 6, 1 - 6, 1 + 12);
        assert_eq!(b.index(v), b.index(shifted));
    }

    #[test]
    fn min_image_shortest_displacement() {
        let b = PeriodicBox::new(4, 4, 4, 2.87).unwrap();
        // extent 8: distance from 7 to 1 should be +2, not -6.
        let d = b.min_image(HalfVec::new(7, 7, 7), HalfVec::new(1, 1, 1));
        assert_eq!(d, HalfVec::new(2, 2, 2));
        let d2 = b.min_image(HalfVec::new(0, 0, 0), HalfVec::new(4, 4, 4));
        assert_eq!(d2.norm2(), 48); // exactly half the box: stays +4 per axis
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(matches!(
            PeriodicBox::new(0, 3, 3, 2.87),
            Err(LatticeError::InvalidBoxDimensions { .. })
        ));
        assert!(PeriodicBox::new(-1, 3, 3, 2.87).is_err());
    }

    #[test]
    fn overflow_rejected() {
        assert!(PeriodicBox::new(1 << 12, 1 << 12, 1 << 12, 2.87).is_err());
    }

    #[test]
    fn try_index_reports_parity_violation() {
        let b = PeriodicBox::new(3, 3, 3, 2.87).unwrap();
        assert!(matches!(
            b.try_index(HalfVec::new(1, 0, 0)),
            Err(LatticeError::ParityViolation { .. })
        ));
        assert!(b.try_index(HalfVec::new(1, 1, 1)).is_ok());
    }

    #[test]
    fn volume_matches_edge_lengths() {
        let b = PeriodicBox::new(10, 10, 10, 2.87).unwrap();
        let l = 10.0 * 2.87; // Å
        assert!((b.volume_m3() - (l * l * l) * 1e-30).abs() < 1e-40);
    }

    #[test]
    fn iter_sites_covers_box_exactly_once() {
        let b = PeriodicBox::new(2, 3, 2, 2.87).unwrap();
        let mut seen = std::collections::HashSet::new();
        for v in b.iter_sites() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), b.n_sites());
    }
}
