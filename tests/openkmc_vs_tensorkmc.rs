//! Cross-engine validation: the OpenKMC baseline (cache-all per-atom
//! arrays) and the TensorKMC engine (triple encoding + vacancy cache) must
//! compute the *same EAM physics* through entirely different data
//! structures.

use std::sync::Arc;
use tensorkmc::core::{KmcConfig, KmcEngine, RateLaw, VacancySystem};
use tensorkmc::lattice::{AlloyComposition, PeriodicBox, RegionGeometry, SiteArray, Species};
use tensorkmc::openkmc::OpenKmcEngine;
use tensorkmc::operators::{EamLatticeEvaluator, VacancyEnergyEvaluator};
use tensorkmc::potential::EamPotential;
use tensorkmc_compat::rng::StdRng;

fn lattice(seed: u64, cells: i32) -> SiteArray {
    let pbox = PeriodicBox::new(cells, cells, cells, 2.87).unwrap();
    let comp = AlloyComposition {
        cu_fraction: 0.05,
        vacancy_fraction: 0.002,
    };
    SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(seed)).unwrap()
}

#[test]
fn candidate_delta_e_agrees_between_the_two_data_layouts() {
    // OpenKMC: ΔE from incremental per-atom arrays over the whole lattice.
    // TensorKMC: ΔE from the 253-site region tables. Same physics, so the
    // numbers must agree to float-association tolerance.
    let l = lattice(3, 12);
    let pot = EamPotential::fe_cu();
    let geom = Arc::new(RegionGeometry::new(2.87, 6.5).unwrap());
    let open = OpenKmcEngine::new(l.clone(), pot, RateLaw::at_temperature(573.0), 1).unwrap();
    let eval = EamLatticeEvaluator::new(pot, Arc::clone(&geom));

    for (vi, &vac_id) in l.find_all(Species::Vacancy).iter().enumerate() {
        let vac = l.pbox().coords(vac_id);
        let mut sys = VacancySystem::new(vac);
        sys.gather_vet(&l, &geom);
        let e = eval.state_energies(&sys.vet).unwrap();
        for k in 0..8 {
            match open.candidate_delta_e(vi, k) {
                Some(open_delta) => {
                    let tkmc_delta = e.delta(k);
                    assert!(
                        (open_delta - tkmc_delta).abs() < 1e-8,
                        "vacancy {vi} dir {k}: OpenKMC {open_delta} vs TensorKMC {tkmc_delta}"
                    );
                }
                None => {
                    // Direction blocked by another vacancy in both pictures.
                    assert_eq!(sys.vet[geom.first_nn_id(k) as usize], Species::Vacancy);
                }
            }
        }
    }
}

#[test]
fn both_engines_conserve_and_stay_physical() {
    let l = lattice(5, 10);
    let pot = EamPotential::fe_cu();
    let before = l.census();

    let mut open = OpenKmcEngine::new(l.clone(), pot, RateLaw::at_temperature(800.0), 7).unwrap();
    open.run_steps(150).unwrap();
    assert_eq!(open.lattice().census(), before);

    let geom = Arc::new(RegionGeometry::new(2.87, 6.5).unwrap());
    let eval = EamLatticeEvaluator::new(pot, Arc::clone(&geom));
    let mut tkmc = KmcEngine::new(
        l,
        geom,
        eval,
        KmcConfig {
            law: RateLaw::at_temperature(800.0),
            ..KmcConfig::thermal_aging_573k()
        },
        7,
    )
    .unwrap();
    tkmc.run_steps(150).unwrap();
    assert_eq!(tkmc.lattice().census(), before);

    // Statistical agreement: simulated time per step is set by the same
    // total propensity, so after equal step counts the clocks must be within
    // a factor of a few (they see the same physics on the same box).
    let ratio = open.time() / tkmc.time();
    assert!(
        (0.2..5.0).contains(&ratio),
        "clock ratio {ratio}: engines disagree on the rate scale"
    );
}

#[test]
fn memory_gap_measured_on_live_engines() {
    // The Table 1 claim on real allocations: OpenKMC's arrays are tens of
    // bytes per site; TensorKMC's state is ~1 B/site + a per-vacancy cache.
    // The gap needs a *dilute* vacancy population (the paper's regime:
    // 8×10⁻⁴ at.%) — at test-style vacancy enrichments the 5.9 kB/vacancy
    // cache can rival the per-atom arrays on tiny boxes.
    let pbox = PeriodicBox::new(16, 16, 16, 2.87).unwrap();
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 2e-4,
    };
    let l = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(9)).unwrap();
    let pot = EamPotential::fe_cu();
    let open = OpenKmcEngine::new(l.clone(), pot, RateLaw::at_temperature(573.0), 1).unwrap();
    let m = open.memory_report();
    let n = l.len();
    assert!(m.total() >= 33 * n, "OpenKMC {} B for {n} sites", m.total());

    let geom = Arc::new(RegionGeometry::new(2.87, 6.5).unwrap());
    let eval = EamLatticeEvaluator::new(pot, Arc::clone(&geom));
    let tkmc = KmcEngine::new(l, geom, eval, KmcConfig::thermal_aging_573k(), 1).unwrap();
    let t_bytes = tkmc.memory_bytes();
    assert!(
        m.total() > 5 * t_bytes,
        "OpenKMC {} vs TensorKMC {} bytes",
        m.total(),
        t_bytes
    );
}
