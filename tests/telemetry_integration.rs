//! Telemetry integration: an instrumented engine run emits per-phase spans,
//! operator spans, and cache statistics; the JSONL records round-trip through
//! the compat JSON parser, field by field (external-schema interop for the
//! hand-rolled writer: any conforming reader sees the same structure).

use std::sync::Arc;
use tensorkmc::core::{KmcConfig, KmcEngine};
use tensorkmc::lattice::{AlloyComposition, PeriodicBox, SiteArray};
use tensorkmc::operators::NnpDirectEvaluator;
use tensorkmc::quickstart;
use tensorkmc::telemetry::{
    keys, sample_record, summary_record, Json, Registry, RunSummary, SamplePoint, Snapshot, SCHEMA,
};
use tensorkmc_compat::rng::StdRng;

const STEPS: u64 = 200;

/// Runs a short instrumented engine trajectory and returns the registry plus
/// the finished engine's (steps, sim time, memory bytes).
fn instrumented_run() -> (Registry, RunSummary) {
    let model = quickstart::train_small_model(11);
    let geom = quickstart::geometry_for(&model);
    let registry = Registry::new();
    let evaluator = NnpDirectEvaluator::new(&model, Arc::clone(&geom)).with_telemetry(&registry);
    let pbox = PeriodicBox::new(12, 12, 12, 2.87).unwrap();
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 1e-3,
    };
    let lattice = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(13)).unwrap();
    let mut engine = KmcEngine::new(
        lattice,
        Arc::clone(&geom),
        evaluator,
        KmcConfig::thermal_aging_573k(),
        13,
    )
    .unwrap();
    engine.attach_telemetry(&registry);
    engine.run_steps(STEPS).unwrap();
    let run = RunSummary {
        steps: engine.stats().steps,
        sim_time: engine.time(),
        wall_s: 1.0, // wall clock is non-deterministic; any positive value
        memory_bytes: engine.memory_bytes() as u64,
    };
    (registry, run)
}

#[test]
fn engine_run_emits_phase_timings_and_cache_rate() {
    let (registry, _) = instrumented_run();
    let snap = registry.snapshot();
    for key in [
        keys::STEP,
        keys::REFRESH,
        keys::SELECT,
        keys::HOP,
        keys::INVALIDATE,
    ] {
        let t = snap.timer(key).unwrap_or_else(|| panic!("{key} missing"));
        assert_eq!(t.count, STEPS, "{key} span count");
        assert!(t.total_ns > 0, "{key} must accumulate wall-clock");
        assert!(
            t.min_ns <= t.p50_ns && t.p50_ns <= t.max_ns,
            "{key} ordering"
        );
    }
    // Phases nest inside the step span, so they cannot exceed it.
    let step_total = snap.timer(keys::STEP).unwrap().total_ns;
    let phase_sum: u64 = [keys::REFRESH, keys::SELECT, keys::HOP, keys::INVALIDATE]
        .iter()
        .map(|k| snap.timer(k).unwrap().total_ns)
        .sum();
    assert!(
        phase_sum <= step_total,
        "phases ({phase_sum} ns) exceed the enclosing step span ({step_total} ns)"
    );
    let rate = snap.cache_hit_rate().expect("hit rate derivable");
    assert!(
        rate > 0.0 && rate <= 1.0,
        "cache hit rate {rate} outside (0, 1]"
    );
    // Two cache levels: every refreshed system (vacancy-cache miss) is
    // either an energy-memo hit (stored energies replayed, no evaluator
    // call) or a memo miss (exactly one evaluator call).
    let memo_hits = snap.counter(keys::ENERGY_CACHE_HIT).unwrap_or(0);
    let memo_misses = snap.counter(keys::ENERGY_CACHE_MISS).unwrap_or(0);
    assert_eq!(
        snap.counter(keys::OP_EVALS),
        Some(memo_misses),
        "one state-energy evaluation per energy-memo miss"
    );
    assert_eq!(
        memo_hits + memo_misses,
        snap.counter(keys::CACHE_MISS).unwrap(),
        "every refreshed system is a memo hit or a memo miss"
    );
    assert!(
        memo_hits > 0,
        "the dilute alloy must produce recurring environments"
    );
    assert!(snap.timer(keys::OP_FEATURE).unwrap().count > 0);
    assert!(snap.timer(keys::OP_KERNEL_FUSED).unwrap().count > 0);
    assert_eq!(
        snap.histogram(keys::REFRESHED_PER_STEP).unwrap().count,
        STEPS
    );
}

#[test]
fn jsonl_records_parse_as_strict_json() {
    let (registry, run) = instrumented_run();
    let snap = registry.snapshot();
    let sample = sample_record(
        &SamplePoint {
            step: run.steps,
            sim_time: run.sim_time,
            wall_s: run.wall_s,
            steps_per_s: run.steps_per_s(),
        },
        &snap,
    )
    .to_string();
    let summary = summary_record(&run, &snap).to_string();

    // A strict JSON reader accepts what the writer emits.
    for (line, ty) in [(&sample, "sample"), (&summary, "summary")] {
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str().unwrap(), SCHEMA);
        assert_eq!(v.get("type").unwrap().as_str().unwrap(), ty);
    }
    let v = Json::parse(&summary).unwrap();
    assert_eq!(v.get("steps").unwrap().as_u64().unwrap(), run.steps);
    assert_eq!(
        v.get("memory_bytes").unwrap().as_u64().unwrap(),
        run.memory_bytes
    );
    assert!(v.get("cache_hit_rate").unwrap().as_f64().unwrap() > 0.0);
    let timers = match v.get("metrics").unwrap().get("timers").unwrap() {
        Json::Arr(items) => items,
        other => panic!("timers must be an array, got {other:?}"),
    };
    let step_timer = timers
        .iter()
        .find(|t| matches!(t.get("name"), Some(Json::Str(s)) if s == keys::STEP))
        .expect("step timer in summary");
    assert_eq!(step_timer.get("count").unwrap().as_u64().unwrap(), STEPS);
    assert!(step_timer.get("total_ns").unwrap().as_u64().unwrap() > 0);

    // And the crate's own parser round-trips the embedded snapshot.
    let parsed = Json::parse(&summary).unwrap();
    let back = Snapshot::from_json(parsed.get("metrics").unwrap()).unwrap();
    assert_eq!(back, snap);
}
