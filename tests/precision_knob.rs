//! Plumbing guarantees of the `precision` execution knob: CLI rejection of
//! unknown values, deck JSON round-trip through `--print-input`, the f32
//! default staying bit-identical to a deck that never mentions precision,
//! and — the one subtlety — re-application after a checkpoint resume.
//!
//! Precision is deliberately the *odd one out* among the execution knobs:
//! `refresh_threads`, `batch_systems`, `delta_features`, and
//! `energy_cache_entries` are all bit-identical at any setting, while
//! `precision = bf16` quantizes the weight stack and therefore changes
//! energy bits. These tests pin the consequences: the knob is not
//! persisted in checkpoints (`@skip`), so the driver must re-apply the
//! deck value on resume, and a bf16 resume must continue the bf16
//! trajectory bit-exactly.

use std::process::Command;
use tensorkmc::core::{HopEvent, Precision};
use tensorkmc::driver;
use tensorkmc::input::{InputDeck, ModelSource};
use tensorkmc_compat::codec::JsonCodec;

/// A small NNP deck that hops vigorously enough to exercise the kernels.
fn small_nnp_deck() -> InputDeck {
    InputDeck {
        cells: 10,
        vacancy_fraction: 4e-3,
        model: ModelSource::TrainSmall { seed: 9 },
        ..InputDeck::default()
    }
}

fn hops(deck: &InputDeck, steps: u64) -> Vec<HopEvent> {
    let mut setup = driver::build_engine(deck, None, None).expect("engine builds");
    (0..steps).map(|_| setup.engine.step().expect("step")).collect()
}

fn assert_bitwise_equal(a: &[HopEvent], b: &[HopEvent], ctx: &str) {
    assert_eq!(a.len(), b.len(), "hop count ({ctx})");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.step, y.step, "step index ({ctx})");
        assert_eq!(x.from, y.from, "hop origin ({ctx})");
        assert_eq!(x.to, y.to, "hop destination ({ctx})");
        assert_eq!(
            x.time.to_bits(),
            y.time.to_bits(),
            "residence time must be bit-exact ({ctx}): {} vs {}",
            x.time,
            y.time
        );
    }
}

#[test]
fn cli_rejects_unknown_precision_values() {
    for bad in ["fp16", "f16", "half", "bf32", ""] {
        let out = Command::new(env!("CARGO_BIN_EXE_tensorkmc"))
            .args(["-in", "/nonexistent.json", "--precision", bad])
            .output()
            .unwrap();
        assert!(
            !out.status.success(),
            "--precision {bad:?} must be rejected"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--precision requires `f32` or `bf16`"),
            "unhelpful rejection for {bad:?}: {stderr}"
        );
    }
}

#[test]
fn cli_rejects_bf16_on_parallel_runs() {
    // Precision changes energy bits, so the CLI applies it *before* the
    // parallel branch: `--precision bf16 --ranks 2` must fail validation
    // loudly rather than run the (f32-only) parallel driver.
    let dir = std::env::temp_dir().join(format!("tensorkmc-prec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let deck_path = dir.join("deck.json");
    let deck = small_nnp_deck();
    std::fs::write(&deck_path, deck.to_json().unwrap()).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_tensorkmc"))
        .args([
            "-in",
            deck_path.to_str().unwrap(),
            "--precision",
            "bf16",
            "--ranks",
            "2",
        ])
        .output()
        .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!out.status.success(), "bf16 + --ranks 2 must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ranks"),
        "rejection must point at the ranks conflict: {stderr}"
    );
}

#[test]
fn print_input_template_round_trips_the_precision_field() {
    let out = Command::new(env!("CARGO_BIN_EXE_tensorkmc"))
        .arg("--print-input")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"precision\": \"f32\""),
        "template deck must carry the default precision: {text}"
    );
    let mut deck = InputDeck::from_json(&text).expect("template parses back");
    assert_eq!(deck.precision, Precision::F32);
    deck.precision = Precision::Bf16;
    let round = InputDeck::from_json(&deck.to_json().unwrap()).expect("bf16 deck parses back");
    assert_eq!(round.precision, Precision::Bf16, "bf16 survives the round trip");
}

#[test]
fn omitted_precision_is_bit_identical_to_explicit_f32() {
    // A deck that never mentions precision and one that says "f32"
    // explicitly must produce the same engine, same trajectory, same bits.
    let implicit = small_nnp_deck();
    let mut json = implicit.to_json().unwrap();
    assert!(json.contains("\"precision\": \"f32\""));
    json = json.replace("\"precision\": \"f32\",", "");
    let parsed = InputDeck::from_json(&json).expect("deck without precision parses");
    assert_eq!(parsed.precision, Precision::F32, "omitted field defaults to f32");
    assert_bitwise_equal(
        &hops(&implicit, 120),
        &hops(&parsed, 120),
        "implicit vs explicit f32",
    );
}

#[test]
fn bf16_changes_the_trajectory_and_resume_reapplies_it() {
    let f32_deck = small_nnp_deck();
    let mut bf16_deck = small_nnp_deck();
    bf16_deck.precision = Precision::Bf16;
    bf16_deck.validate().expect("bf16 NNP deck is valid");

    // Sanity that the knob reaches the kernels end to end: quantized
    // weights must perturb the trajectory within a few hundred hops.
    let straight = hops(&bf16_deck, 200);
    let f32_hops = hops(&f32_deck, 200);
    assert!(
        straight
            .iter()
            .zip(&f32_hops)
            .any(|(a, b)| a.time.to_bits() != b.time.to_bits() || a.to != b.to),
        "bf16 produced the exact f32 trajectory — the knob never reached the kernels"
    );

    // Checkpoints do not persist precision (@skip → decodes as f32), so
    // the driver must re-apply the deck value on resume. The assertion is
    // deliberately about *which arithmetic* the resumed engine runs, not
    // about bit-continuity with the uninterrupted run: resume rebuilds the
    // vacancy systems in lattice-scan order, which reorders the propensity
    // sum and shifts residence times by a few ulps at any precision — a
    // pre-existing property of resume, orthogonal to this knob.
    let mut setup = driver::build_engine(&bf16_deck, None, None).expect("engine builds");
    for _ in 0..80 {
        setup.engine.step().expect("step");
    }
    let ck_json = setup.engine.checkpoint().to_json_string();
    assert!(
        !ck_json.contains("bf16"),
        "precision is an execution knob and must not be persisted: {ck_json}"
    );
    let resume_hops = |deck: &InputDeck| -> Vec<HopEvent> {
        let ck = tensorkmc::core::Checkpoint::from_json_str(&ck_json).expect("checkpoint parses");
        let mut s = driver::build_engine(deck, Some(ck), None).expect("resume builds");
        (0..120).map(|_| s.engine.step().expect("resumed step")).collect()
    };

    // Same checkpoint + same bf16 deck: the continuation is deterministic.
    assert_bitwise_equal(
        &resume_hops(&bf16_deck),
        &resume_hops(&bf16_deck),
        "bf16 resume is deterministic",
    );
    // Same checkpoint + f32 deck: the deck, not the checkpoint, owns the
    // precision, so the continuation runs f32 arithmetic and diverges.
    assert!(
        resume_hops(&bf16_deck)
            .iter()
            .zip(&resume_hops(&f32_deck))
            .any(|(a, b)| a.time.to_bits() != b.time.to_bits() || a.to != b.to),
        "resuming the same checkpoint under bf16 and f32 decks produced \
         identical trajectories — the driver never re-applied the knob"
    );
}
