//! Tier-1 guarantee of the batched vacancy-cache refresh: at any
//! `batch_systems` cap — per-system (1), bounded chunks (7), or one call
//! for the whole stale set (0 = unbounded) — the trajectory is
//! **bit-identical** to the per-system engine.
//!
//! The batched path concatenates every stale system's (1+8)·N feature rows
//! into a single kernel call, then slices the energies back out and writes
//! rates (and the propensity-tree updates, via `SumTree::set_many`) back in
//! ascending system order. Rows are computed independently in ascending
//! order inside the kernel, so the float-op sequence per system is exactly
//! the per-system one — every hop, every residence time, and the final
//! checkpoint must match to the last bit, not merely within tolerance.

use tensorkmc::core::{EvalMode, KmcEngine};
use tensorkmc::lattice::AlloyComposition;
use tensorkmc::operators::NnpDirectEvaluator;
use tensorkmc::quickstart;
use tensorkmc_compat::codec::JsonCodec;

const STEPS: u64 = 500;

fn engine(model: &tensorkmc::nnp::NnpModel, batch_systems: usize) -> KmcEngine<NnpDirectEvaluator> {
    // Vacancy-dense enough that every hop invalidates a multi-system batch,
    // so unbounded batching routinely fuses several systems per kernel call
    // and a cap of 7 actually splits some batches into chunks.
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 4e-3,
    };
    let mut e = quickstart::engine_with(model, 10, comp, 573.0, EvalMode::Cached, 11)
        .expect("engine builds");
    e.set_batch_systems(batch_systems);
    e
}

#[test]
fn batched_refresh_replays_the_per_system_trajectory_bit_for_bit() {
    let model = quickstart::train_small_model(9);
    let mut per_system = engine(&model, 1);
    let mut capped = engine(&model, 7);
    let mut unbounded = engine(&model, 0);

    for step in 0..STEPS {
        let a = per_system.step().expect("per-system step");
        let b = capped.step().expect("capped step");
        let c = unbounded.step().expect("unbounded step");
        for (label, x) in [("capped", &b), ("unbounded", &c)] {
            assert_eq!(a.step, x.step, "{label} step index at {step}");
            assert_eq!(a.from, x.from, "{label} hop origin at step {step}");
            assert_eq!(a.to, x.to, "{label} hop destination at step {step}");
            assert_eq!(
                a.species, x.species,
                "{label} hopping species at step {step}"
            );
            assert_eq!(
                a.time.to_bits(),
                x.time.to_bits(),
                "{label} residence time must be bit-exact at step {step}: {} vs {}",
                a.time,
                x.time
            );
        }
    }

    // The batch cap is an execution detail (@skip in the codec), so all
    // three checkpoints must be byte-identical JSON — any run can resume
    // any other's checkpoint regardless of batching.
    let want = per_system.checkpoint().to_json_string();
    assert_eq!(
        want,
        capped.checkpoint().to_json_string(),
        "capped checkpoint diverged after {STEPS} bit-identical steps"
    );
    assert_eq!(
        want,
        unbounded.checkpoint().to_json_string(),
        "unbounded checkpoint diverged after {STEPS} bit-identical steps"
    );
    assert_eq!(per_system.lattice().as_slice(), capped.lattice().as_slice());
    assert_eq!(
        per_system.lattice().as_slice(),
        unbounded.lattice().as_slice()
    );
}
