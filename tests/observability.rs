//! Observability integration: the span tracer nests the KMC phases without
//! perturbing the trajectory, the driver's `--trace` flag exports a valid
//! Chrome trace, and `--metrics-listen` serves live Prometheus/JSON scrapes
//! while a run is in flight.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use tensorkmc::core::{KmcConfig, KmcEngine};
use tensorkmc::lattice::{AlloyComposition, PeriodicBox, SiteArray};
use tensorkmc::operators::NnpDirectEvaluator;
use tensorkmc::quickstart;
use tensorkmc::telemetry::{keys, Json, Registry, Tracer};
use tensorkmc_compat::rng::StdRng;

const STEPS: u64 = 150;

/// A small NNP-driven engine; telemetry (and through it the tracer) is
/// attached only when a registry is given, so the same builder yields the
/// traced and the control trajectory.
fn build_engine(registry: Option<&Registry>) -> KmcEngine<NnpDirectEvaluator> {
    let model = quickstart::train_small_model(11);
    let geom = quickstart::geometry_for(&model);
    let evaluator = NnpDirectEvaluator::new(&model, Arc::clone(&geom));
    let evaluator = match registry {
        Some(r) => evaluator.with_telemetry(r),
        None => evaluator,
    };
    let pbox = PeriodicBox::new(12, 12, 12, 2.87).unwrap();
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 1e-3,
    };
    let lattice = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(13)).unwrap();
    let mut engine = KmcEngine::new(
        lattice,
        Arc::clone(&geom),
        evaluator,
        KmcConfig::thermal_aging_573k(),
        13,
    )
    .unwrap();
    if let Some(r) = registry {
        engine.attach_telemetry(r);
    }
    engine
}

/// `(parent name, child name)` pairs present in the trace.
fn parent_pairs(events: &[tensorkmc::telemetry::TraceEvent]) -> HashSet<(&str, &str)> {
    let name_of: HashMap<u64, &str> = events.iter().map(|e| (e.id, e.name)).collect();
    events
        .iter()
        .filter(|e| e.parent != 0)
        .filter_map(|e| name_of.get(&e.parent).map(|p| (*p, e.name)))
        .collect()
}

#[test]
fn trace_spans_nest_and_do_not_perturb_the_trajectory() {
    let registry = Registry::new();
    let tracer = Tracer::new();
    registry.set_tracer(Arc::clone(&tracer));
    let mut traced = build_engine(Some(&registry));
    traced.run_steps(STEPS).unwrap();
    let mut control = build_engine(None);
    control.run_steps(STEPS).unwrap();

    // Tracing is an execution knob: the trajectory must be bit-identical.
    assert_eq!(traced.stats(), control.stats());
    assert_eq!(
        tensorkmc::analysis::to_xyz(traced.lattice(), false),
        tensorkmc::analysis::to_xyz(control.lattice(), false)
    );

    tracer.flush_thread();
    assert_eq!(tracer.dropped(), 0, "short run must fit the default buffer");
    let events = tracer.events();
    assert!(events.len() as u64 >= STEPS, "at least one span per step");
    let pairs = parent_pairs(&events);
    // One step reads select -> hop -> invalidate -> refresh under kmc.step,
    // with the gather/kernel/scatter ladder nested inside the refresh.
    for (parent, child) in [
        (keys::STEP, keys::SELECT),
        (keys::STEP, keys::HOP),
        (keys::STEP, keys::INVALIDATE),
        (keys::STEP, keys::REFRESH),
        (keys::REFRESH, keys::REFRESH_GATHER),
        (keys::REFRESH, keys::REFRESH_SCATTER),
    ] {
        assert!(
            pairs.contains(&(parent, child)),
            "missing {parent} -> {child}"
        );
    }
    let names: HashSet<&str> = events.iter().map(|e| e.name).collect();
    for name in [keys::OP_DEDUP, keys::OP_SCATTER, keys::OP_KERNEL_FUSED] {
        assert!(names.contains(name), "missing operator span {name}");
    }

    // The Chrome export is parseable JSON with complete ("X") events.
    let text = tracer.to_chrome_json().to_string();
    let v = Json::parse(&text).unwrap();
    let Some(Json::Arr(items)) = v.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let complete = items
        .iter()
        .filter(|e| matches!(e.get("ph"), Some(Json::Str(p)) if p == "X"))
        .count();
    assert_eq!(complete, events.len());
}

/// Writes a small EAM deck (no NNP training) into `dir` and returns its path.
fn write_eam_deck(dir: &Path, name: &str, max_steps: u64) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(
        &path,
        format!(
            "{{\"cells\": 12, \"vacancy_fraction\": 0.005, \
             \"model\": {{\"source\": \"eam\"}}, \
             \"max_steps\": {max_steps}, \"max_time\": 1e6, \
             \"sample_every\": 200}}"
        ),
    )
    .unwrap();
    path
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tensorkmc-obs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One blocking HTTP/1.1 GET against `addr`; returns the raw response.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn driver_serves_live_metrics_while_running() {
    let dir = scratch_dir("metrics");
    // Enough steps that the run is still in flight when we scrape; the test
    // kills the child once the endpoint has answered.
    let deck = write_eam_deck(&dir, "deck.json", 50_000_000);
    let mut child = Command::new(env!("CARGO_BIN_EXE_tensorkmc"))
        .args([
            "-in",
            deck.to_str().unwrap(),
            "--metrics-listen",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // The driver prints the bound address (port 0 picks a free one) before
    // entering the run loop.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("driver exited before announcing the metrics endpoint")
            .unwrap();
        if let Some(rest) = line.strip_prefix("metrics: listening on http://") {
            break rest.trim_end_matches("/metrics").to_string();
        }
    };

    let prom = http_get(&addr, "/metrics");
    let json = http_get(&addr, "/metrics.json");
    let missing = http_get(&addr, "/nope");
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(prom.starts_with("HTTP/1.1 200 OK"), "got: {prom}");
    assert!(
        prom.contains("# TYPE tensorkmc_") && prom.contains("tensorkmc_kmc_step"),
        "prometheus body missing step metrics: {prom}"
    );
    assert!(json.starts_with("HTTP/1.1 200 OK"), "got: {json}");
    let body = json.split("\r\n\r\n").nth(1).expect("json body");
    let v = Json::parse(body).unwrap();
    assert!(
        matches!(v.get("snapshots"), Some(Json::Arr(items)) if !items.is_empty()),
        "scrape must carry at least the driver's registry snapshot"
    );
    assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing}");
}

#[test]
fn driver_trace_export_is_a_nested_chrome_trace() {
    let dir = scratch_dir("trace");
    let deck = write_eam_deck(&dir, "deck.json", 400);
    let trace_path = dir.join("run.trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_tensorkmc"))
        .args([
            "-in",
            deck.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
            "--refresh-threads",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "driver failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("trace -> "),
        "missing export line: {stdout}"
    );

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let v = Json::parse(&text).unwrap();
    let Some(Json::Arr(items)) = v.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    // Rebuild the span tree from the exported args and check the step ->
    // refresh -> (gather | kernel | scatter) nesting survived the export.
    let mut name_of: HashMap<u64, String> = HashMap::new();
    let mut links: Vec<(u64, String)> = Vec::new(); // (parent id, child name)
    for e in items {
        if !matches!(e.get("ph"), Some(Json::Str(p)) if p == "X") {
            continue;
        }
        let name = e.get("name").unwrap().as_str().unwrap().to_string();
        let args = e.get("args").unwrap();
        let id = args.get("id").unwrap().as_u64().unwrap();
        let parent = args.get("parent").unwrap().as_u64().unwrap();
        assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        name_of.insert(id, name.clone());
        if parent != 0 {
            links.push((parent, name));
        }
    }
    let pairs: HashSet<(String, String)> = links
        .into_iter()
        .filter_map(|(p, child)| name_of.get(&p).map(|pn| (pn.clone(), child)))
        .collect();
    let has = |p: &str, c: &str| pairs.contains(&(p.to_string(), c.to_string()));
    assert!(has(keys::STEP, keys::REFRESH), "step must enclose refresh");
    assert!(
        pairs.iter().any(|(p, _)| p == keys::REFRESH),
        "refresh must have nested children (gather/kernel/scatter), got pairs: {pairs:?}"
    );
    assert!(
        has(keys::REFRESH, keys::REFRESH_GATHER),
        "batched refresh must trace its gather stage"
    );
}
