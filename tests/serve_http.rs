//! The job server's HTTP contract, in process: submission and validation
//! errors are structured and per-request, the queue bound is admission
//! control (429 + Retry-After), cancellation and terminal states conflict
//! correctly, shutdown drains and is idempotent, and a restarted server
//! re-adopts persisted jobs and runs them to completion.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tensorkmc::serve::job::JobPhase;
use tensorkmc::serve::{JobServer, ServeOptions};
use tensorkmc_compat::http::decode_chunked;
use tensorkmc_compat::json::Json;

/// One HTTP exchange over a fresh connection (the server is one request
/// per connection). Returns (status, headers, body) with chunked bodies
/// already decoded.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = std::str::from_utf8(&raw[..split]).unwrap();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
        .collect();
    let mut payload = raw[split + 4..].to_vec();
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked")
    {
        payload = decode_chunked(&payload).unwrap();
    }
    (status, headers, payload)
}

fn body_json(body: &[u8]) -> Json {
    Json::parse(std::str::from_utf8(body).unwrap()).unwrap()
}

/// A fast EAM deck: ~6 steps of 10^3-cell thermal aging, sampled every 2.
fn tiny_deck(seed: u64, max_steps: u64) -> String {
    format!(
        r#"{{"cells": 10, "model": {{"source": "eam"}}, "max_steps": {max_steps},
            "sample_every": 2, "refresh_threads": 1, "seed": {seed}}}"#
    )
}

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tkmc-serve-http-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn wait_for_phase(addr: SocketAddr, id: &str, want: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, _, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(code, 200);
        let doc = body_json(&body);
        if doc.get("phase").unwrap().as_str().unwrap() == want {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {want}: {}",
            doc.to_string()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn submission_validation_and_lifecycle() {
    let state = temp_state_dir("lifecycle");
    let mut server = JobServer::start(ServeOptions {
        state_dir: state.clone(),
        max_concurrent: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Malformed JSON is that request's 422, not a server problem.
    let (code, _, body) = http(addr, "POST", "/jobs", "{ not json");
    assert_eq!(code, 422);
    let err = body_json(&body);
    assert_eq!(
        err.get("error").unwrap().get("kind").unwrap().as_str().unwrap(),
        "deck"
    );
    // So are serve-mode restrictions.
    let (code, _, _) = http(addr, "POST", "/jobs", r#"{"ranks": 2}"#);
    assert_eq!(code, 422);
    let (code, _, _) = http(addr, "POST", "/jobs", r#"{"resume_from": "x.ckpt"}"#);
    assert_eq!(code, 422);
    // Unknown routes and methods are structured too.
    let (code, _, _) = http(addr, "GET", "/nope", "");
    assert_eq!(code, 404);
    let (code, _, _) = http(addr, "DELETE", "/jobs", "");
    assert_eq!(code, 405);
    let (code, _, _) = http(addr, "GET", "/jobs/job-999999", "");
    assert_eq!(code, 404);

    // A valid deck is accepted with a server-assigned id.
    let (code, _, body) = http(addr, "POST", "/jobs", &tiny_deck(11, 6));
    assert_eq!(code, 201, "{}", String::from_utf8_lossy(&body));
    let accepted = body_json(&body);
    let id = accepted.get("id").unwrap().as_str().unwrap().to_string();
    assert_eq!(id, "job-000001");

    // It appears in the listing and runs to completion.
    let (code, _, body) = http(addr, "GET", "/jobs", "");
    assert_eq!(code, 200);
    assert!(String::from_utf8_lossy(&body).contains(&id));
    let done = wait_for_phase(addr, &id, "completed");
    assert_eq!(done.get("steps").unwrap().as_u64().unwrap(), 6);

    // The stream replays: lifecycle events, observables, the result.
    let (code, headers, body) = http(addr, "GET", &format!("/jobs/{id}/stream"), "");
    assert_eq!(code, 200);
    assert!(headers
        .iter()
        .any(|(k, v)| k == "content-type" && v == "application/x-ndjson"));
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"type\":\"started\""), "stream: {text}");
    assert!(text.contains("\"type\":\"observable\""));
    assert!(text.contains("tensorkmc.metrics.v1"));
    assert!(text.contains("\"type\":\"result\""));
    assert!(text.contains("\"type\":\"completed\""));

    // Per-job telemetry and the checkpoint are served.
    let (code, _, body) = http(addr, "GET", &format!("/jobs/{id}/metrics"), "");
    assert_eq!(code, 200);
    assert!(String::from_utf8_lossy(&body).contains("# TYPE"));
    let (code, _, body) = http(addr, "GET", &format!("/jobs/{id}/checkpoint"), "");
    assert_eq!(code, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"stats\""));

    // Cancelling a finished job conflicts.
    let (code, _, _) = http(addr, "POST", &format!("/jobs/{id}/cancel"), "");
    assert_eq!(code, 409);

    // Server-level telemetry counted the lifecycle.
    let (code, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(code, 200);
    let metrics = String::from_utf8(body).unwrap();
    assert!(metrics.contains("serve_jobs_submitted"), "{metrics}");
    assert!(metrics.contains("serve_jobs_completed"));

    server.shutdown();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn queue_bound_is_admission_control() {
    let state = temp_state_dir("bound");
    let mut server = JobServer::start(ServeOptions {
        state_dir: state.clone(),
        max_queue: 1,
        max_concurrent: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // A long job occupies the single engine slot; one more fills the queue.
    let (code, _, body) = http(addr, "POST", "/jobs", &tiny_deck(1, 100_000));
    assert_eq!(code, 201);
    let running = body_json(&body).get("id").unwrap().as_str().unwrap().to_string();
    wait_for_phase(addr, &running, "running");
    let (code, _, _) = http(addr, "POST", "/jobs", &tiny_deck(2, 100_000));
    assert_eq!(code, 201);

    // The next submission is rejected with retry advice — and leaves no
    // trace (no listing entry, no state directory).
    let (code, headers, body) = http(addr, "POST", "/jobs", &tiny_deck(3, 100_000));
    assert_eq!(code, 429, "{}", String::from_utf8_lossy(&body));
    assert!(headers.iter().any(|(k, _)| k == "retry-after"));
    assert_eq!(
        body_json(&body)
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str()
            .unwrap(),
        "queue_full"
    );
    let (_, _, body) = http(addr, "GET", "/jobs", "");
    assert!(!String::from_utf8_lossy(&body).contains("job-000003"));
    assert!(!state.join("jobs").join("job-000003").exists());

    // Cancelling the queued job frees it without it ever running.
    let (code, _, _) = http(addr, "POST", "/jobs/job-000002/cancel", "");
    assert_eq!(code, 202);

    server.shutdown();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn shutdown_drains_and_restart_adopts() {
    let state = temp_state_dir("drain");
    let mut server = JobServer::start(ServeOptions {
        state_dir: state.clone(),
        max_concurrent: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // One running job (too long to finish) and one queued behind it.
    let (code, _, body) = http(addr, "POST", "/jobs", &tiny_deck(5, 100_000));
    assert_eq!(code, 201);
    let long_id = body_json(&body).get("id").unwrap().as_str().unwrap().to_string();
    wait_for_phase(addr, &long_id, "running");
    let (code, _, _) = http(addr, "POST", "/jobs", &tiny_deck(6, 6));
    assert_eq!(code, 201);

    // POST /shutdown answers before draining; further submissions refuse.
    let (code, _, body) = http(addr, "POST", "/shutdown", "");
    assert_eq!(code, 202);
    assert!(String::from_utf8_lossy(&body).contains("draining"));
    server.wait_for_shutdown();
    let (code, _, _) = http(addr, "POST", "/jobs", &tiny_deck(7, 6));
    assert_eq!(code, 503);
    server.shutdown();
    server.shutdown(); // idempotent: a second drain is a no-op
    drop(server); // and so is the Drop-path shutdown

    // The running job was checkpointed and marked interrupted; the queued
    // one stayed queued. Both come back on restart and finish.
    let mut revived = JobServer::start(ServeOptions {
        state_dir: state.clone(),
        max_concurrent: 2,
        ..ServeOptions::default()
    })
    .unwrap();
    assert_eq!(revived.job_count(), 2);
    let addr = revived.local_addr();
    let doc = wait_for_phase(addr, "job-000002", "completed");
    assert_eq!(doc.get("steps").unwrap().as_u64().unwrap(), 6);
    // The long job came back too (reading its whole stream would wait for
    // the 100k-step budget, so check the status document and cancel it).
    let (_, _, status) = http(addr, "GET", &format!("/jobs/{long_id}"), "");
    let doc = body_json(&status);
    let phase = doc.get("phase").unwrap().as_str().unwrap();
    assert!(
        phase == "running" || phase == "queued" || phase == "completed",
        "unexpected phase after adoption: {phase}"
    );
    let (code, _, _) = http(addr, "POST", &format!("/jobs/{long_id}/cancel"), "");
    assert!(code == 202 || code == 409);
    // Ids keep counting from the adopted high-water mark.
    let (code, _, body) = http(addr, "POST", "/jobs", &tiny_deck(8, 6));
    assert_eq!(code, 201);
    assert_eq!(
        body_json(&body).get("id").unwrap().as_str().unwrap(),
        "job-000003"
    );
    wait_for_phase(addr, "job-000003", "completed");

    revived.shutdown();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn cancel_stops_a_running_job_at_a_chunk_boundary() {
    let state = temp_state_dir("cancel");
    let mut server = JobServer::start(ServeOptions {
        state_dir: state.clone(),
        max_concurrent: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let (code, _, body) = http(addr, "POST", "/jobs", &tiny_deck(9, 100_000));
    assert_eq!(code, 201);
    let id = body_json(&body).get("id").unwrap().as_str().unwrap().to_string();
    wait_for_phase(addr, &id, "running");
    let (code, _, body) = http(addr, "POST", &format!("/jobs/{id}/cancel"), "");
    assert_eq!(code, 202);
    assert!(body_json(&body)
        .get("cancel_requested")
        .unwrap()
        .as_bool()
        .unwrap());
    let doc = wait_for_phase(addr, &id, "cancelled");
    // Cancellation lands at a chunk boundary, far short of the budget, and
    // keeps the last checkpoint (a cancel can strike before the first
    // chunk, so steps may legitimately still be 0).
    assert!(doc.get("steps").unwrap().as_u64().unwrap() < 100_000);
    let (code, _, _) = http(addr, "GET", &format!("/jobs/{id}/checkpoint"), "");
    assert_eq!(code, 200);
    // The stream is closed out with the terminal event.
    let (_, _, body) = http(addr, "GET", &format!("/jobs/{id}/stream"), "");
    assert!(String::from_utf8_lossy(&body).contains("\"type\":\"cancelled\""));

    server.shutdown();
    std::fs::remove_dir_all(&state).ok();
}

/// Marker used by `JobPhase` so the phase names tested over the wire stay
/// tied to the enum (a rename must update both).
#[test]
fn wire_phase_names_match_the_enum() {
    for (phase, name) in [
        (JobPhase::Queued, "queued"),
        (JobPhase::Running, "running"),
        (JobPhase::Completed, "completed"),
        (JobPhase::Failed, "failed"),
        (JobPhase::Cancelled, "cancelled"),
        (JobPhase::Interrupted, "interrupted"),
    ] {
        assert_eq!(phase.as_str(), name);
    }
}
