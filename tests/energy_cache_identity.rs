//! Tier-1 guarantee of the VET→energy memo cache: with the memo on —
//! recurring environments replaying stored energies instead of paying
//! feature build + inference — the trajectory is **bit-identical** to the
//! memo-off run, at every batching and threading setting.
//!
//! The guarantee holds by construction: state energies are a pure
//! deterministic function of the VET, the memo's collision check compares
//! the full stored key (a hash match alone never replays), and replayed
//! energies re-enter the engine through the same
//! `VacancySystem::apply_energies` float-op sequence as freshly computed
//! ones. So every hop, every residence time, and the final checkpoint must
//! match to the last bit — not merely within tolerance.

use tensorkmc::core::{EvalMode, KmcEngine};
use tensorkmc::lattice::AlloyComposition;
use tensorkmc::operators::NnpDirectEvaluator;
use tensorkmc::quickstart;
use tensorkmc_compat::codec::JsonCodec;

const STEPS: u64 = 500;

fn engine(
    model: &tensorkmc::nnp::NnpModel,
    memo_entries: usize,
    batch_systems: usize,
    refresh_threads: usize,
) -> KmcEngine<NnpDirectEvaluator> {
    // Vacancy-dense enough that refreshes routinely cover several systems,
    // so memo hits and misses interleave inside single batched chunks.
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 4e-3,
    };
    let mut e = quickstart::engine_with(model, 10, comp, 573.0, EvalMode::Cached, 11)
        .expect("engine builds");
    e.set_energy_cache_entries(memo_entries);
    e.set_batch_systems(batch_systems);
    e.set_refresh_threads(refresh_threads);
    e
}

/// Run `STEPS` hops on a memo-off/memo-on pair with identical execution
/// knobs and demand bit-equality of every hop and of the final checkpoint.
fn assert_memo_matches_uncached(batch_systems: usize, refresh_threads: usize) {
    let model = quickstart::train_small_model(9);
    let mut off = engine(&model, 0, batch_systems, refresh_threads);
    let mut on = engine(&model, 4096, batch_systems, refresh_threads);

    for step in 0..STEPS {
        let a = off.step().expect("memo-off step");
        let b = on.step().expect("memo-on step");
        let ctx = format!("batch={batch_systems} threads={refresh_threads} step={step}");
        assert_eq!(a.step, b.step, "step index ({ctx})");
        assert_eq!(a.from, b.from, "hop origin ({ctx})");
        assert_eq!(a.to, b.to, "hop destination ({ctx})");
        assert_eq!(a.species, b.species, "hopping species ({ctx})");
        assert_eq!(
            a.time.to_bits(),
            b.time.to_bits(),
            "residence time must be bit-exact ({ctx}): {} vs {}",
            a.time,
            b.time
        );
    }

    // The memo must actually have engaged — a vacuous pass (zero hits)
    // would prove nothing about replay identity.
    let stats = on.memo_stats();
    assert!(
        stats.hits > 0,
        "memo-on run never replayed an entry (batch={batch_systems} \
         threads={refresh_threads}); the test exercised nothing"
    );
    assert_eq!(off.memo_stats().hits, 0, "memo-off run must not memoise");

    // `energy_cache_entries` is an execution detail (@skip in the codec),
    // so the two checkpoints must be byte-identical JSON — either run can
    // resume the other's checkpoint at any memo setting.
    assert_eq!(
        off.checkpoint().to_json_string(),
        on.checkpoint().to_json_string(),
        "checkpoint diverged after {STEPS} bit-identical steps \
         (batch={batch_systems} threads={refresh_threads})"
    );
    assert_eq!(off.lattice().as_slice(), on.lattice().as_slice());
}

#[test]
fn memo_replays_the_uncached_trajectory_per_system_serial() {
    assert_memo_matches_uncached(1, 1);
}

#[test]
fn memo_replays_the_uncached_trajectory_capped_batch_serial() {
    assert_memo_matches_uncached(7, 1);
}

#[test]
fn memo_replays_the_uncached_trajectory_unbounded_batch_serial() {
    assert_memo_matches_uncached(0, 1);
}

#[test]
fn memo_replays_the_uncached_trajectory_per_system_parallel() {
    assert_memo_matches_uncached(1, 4);
}

#[test]
fn memo_replays_the_uncached_trajectory_capped_batch_parallel() {
    assert_memo_matches_uncached(7, 4);
}

#[test]
fn memo_replays_the_uncached_trajectory_unbounded_batch_parallel() {
    assert_memo_matches_uncached(0, 4);
}

#[test]
fn tiny_memo_evicts_but_still_replays_identically() {
    // A 16-entry bound thrashes constantly at this vacancy density; the
    // trajectory must not care.
    let model = quickstart::train_small_model(9);
    let mut off = engine(&model, 0, 0, 1);
    let mut tiny = engine(&model, 16, 0, 1);
    for _ in 0..200 {
        let a = off.step().expect("memo-off step");
        let b = tiny.step().expect("tiny-memo step");
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.from, b.from);
        assert_eq!(a.to, b.to);
    }
    let stats = tiny.memo_stats();
    assert!(stats.evictions > 0, "a 16-entry memo must evict here");
    assert_eq!(
        off.checkpoint().to_json_string(),
        tiny.checkpoint().to_json_string()
    );
}
