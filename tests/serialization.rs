//! Persistence integration: a trained model survives a JSON round-trip with
//! bit-identical engine behaviour, and lattice snapshots round-trip.

use tensorkmc::core::EvalMode;
use tensorkmc::lattice::{AlloyComposition, SiteArray};
use tensorkmc::nnp::NnpModel;
use tensorkmc::quickstart;
use tensorkmc_compat::codec::JsonCodec;

#[test]
fn model_json_round_trip_preserves_trajectories() {
    let model = quickstart::train_small_model(9);
    let json = model.to_json_string();
    let restored = NnpModel::from_json_str(&json).unwrap();
    assert_eq!(model, restored);

    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 5e-4,
    };
    let mut a = quickstart::engine_with(&model, 10, comp, 573.0, EvalMode::Cached, 5).unwrap();
    let mut b = quickstart::engine_with(&restored, 10, comp, 573.0, EvalMode::Cached, 5).unwrap();
    for _ in 0..30 {
        let ea = a.step().unwrap();
        let eb = b.step().unwrap();
        assert_eq!((ea.from, ea.to, ea.species), (eb.from, eb.to, eb.species));
    }
}

#[test]
fn lattice_snapshot_round_trip() {
    let model = quickstart::train_small_model(10);
    let mut engine = quickstart::thermal_aging_engine(&model, 10, 10).unwrap();
    engine.run_steps(50).unwrap();
    let json = engine.lattice().to_json_string();
    let restored = SiteArray::from_json_str(&json).unwrap();
    assert_eq!(restored.as_slice(), engine.lattice().as_slice());
    assert_eq!(restored.pbox(), engine.lattice().pbox());
}

#[test]
fn deployed_stack_round_trips() {
    use tensorkmc::operators::F32Stack;
    let model = quickstart::train_small_model(11);
    let stack = F32Stack::from_model(&model);
    let json = stack.to_json_string();
    let restored = F32Stack::from_json_str(&json).unwrap();
    assert_eq!(stack, restored);
}
