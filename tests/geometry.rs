//! Cross-crate integration: the paper's §4.1.1 geometric constants must be
//! consistent everywhere they appear.

use tensorkmc::lattice::{
    RegionGeometry, ShellTable, FE_LATTICE_CONSTANT, SHORT_CUTOFF, STANDARD_CUTOFF,
};
use tensorkmc::operators::feature_op::FeatureOpTables;
use tensorkmc::potential::{FeatureSet, FeatureTable};

#[test]
fn paper_constants_propagate_through_the_stack() {
    // §4.1.1: rcut 6.5 Å -> N_region 253, N_local 112; 32 (p,q) pairs -> 64
    // features for the binary alloy.
    let geom = RegionGeometry::new(FE_LATTICE_CONSTANT, STANDARD_CUTOFF).unwrap();
    assert_eq!(geom.n_region(), 253);
    assert_eq!(geom.n_local(), 112);

    let fs = FeatureSet::paper_32();
    assert_eq!(fs.n_dim(), 32);
    assert_eq!(fs.n_features(), 64);

    let table = FeatureTable::new(fs, &geom.shells);
    let tables = FeatureOpTables::new(&geom, &table);
    assert_eq!(tables.n_region, 253);
    assert_eq!(tables.n_local, 112);
    assert_eq!(tables.n_features, 64);
    assert_eq!(tables.n_all, 1181);
}

#[test]
fn short_cutoff_variant() {
    // Fig. 11's 5.8 Å comparison point.
    let shells = ShellTable::new(FE_LATTICE_CONSTANT, SHORT_CUTOFF).unwrap();
    assert_eq!(shells.n_local(), 64);
    let geom = RegionGeometry::new(FE_LATTICE_CONSTANT, SHORT_CUTOFF).unwrap();
    assert!(geom.n_region() < 253);
}

#[test]
fn feature_table_is_consistent_with_descriptor() {
    let geom = RegionGeometry::new(FE_LATTICE_CONSTANT, STANDARD_CUTOFF).unwrap();
    let fs = FeatureSet::paper_32();
    let table = FeatureTable::new(fs.clone(), &geom.shells);
    for s in 0..geom.shells.n_shells() as u8 {
        let r = geom.shells.shell_distance(s);
        for k in 0..fs.n_dim() {
            assert!((table.get(s, k) - fs.value(k, r)).abs() < 1e-15);
        }
    }
}
