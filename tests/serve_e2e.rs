//! The job server at the binary level: two decks submitted over HTTP run
//! concurrently and each streamed trajectory (CSV, XYZ snapshot, final
//! checkpoint) is bit-identical to the same deck run single-shot with
//! `tensorkmc -in deck.json`; a server killed (SIGKILL) mid-job re-adopts
//! the job on restart and resumes it to the byte-identical final
//! checkpoint of an uninterrupted run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tensorkmc_compat::http::decode_chunked;
use tensorkmc_compat::json::Json;

/// The shared deck: EAM oracle (deterministic, no training) on a 10^3-cell
/// box. Output paths matter only to the CLI reference run; the server
/// streams the same artifacts instead of writing files.
fn deck_text(seed: u64, max_steps: u64, base: &str) -> String {
    format!(
        r#"{{"cells": 10, "model": {{"source": "eam"}}, "max_steps": {max_steps},
            "sample_every": 2, "refresh_threads": 1, "seed": {seed},
            "csv_output": "{base}.csv", "xyz_output": "{base}.xyz",
            "checkpoint_output": "{base}.ckpt"}}"#
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tkmc-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bin(dir: &Path, args: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_tensorkmc"));
    c.current_dir(dir)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    c
}

/// Waits for the serve banner and returns the bound address.
fn serve_addr(child: &mut Child) -> String {
    let stdout = child.stdout.as_mut().unwrap();
    let mut text = String::new();
    let mut buf = [0u8; 256];
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let n = stdout.read(&mut buf).unwrap();
        text.push_str(std::str::from_utf8(&buf[..n]).unwrap());
        if let Some(line) = text.lines().find(|l| l.contains("listening on http://")) {
            let addr = line.split("listening on http://").nth(1).unwrap();
            return addr.split_whitespace().next().unwrap().to_string();
        }
        assert!(
            n > 0 && Instant::now() < deadline,
            "server never announced its address; output so far:\n{text}"
        );
    }
}

/// One HTTP exchange; chunked bodies come back decoded.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(180))).unwrap();
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = std::str::from_utf8(&raw[..split]).unwrap().to_string();
    let status: u16 = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut payload = raw[split + 4..].to_vec();
    if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        payload = decode_chunked(&payload).unwrap();
    }
    (status, payload)
}

fn submit(addr: &str, deck: &str) -> String {
    let (code, body) = http(addr, "POST", "/jobs", deck);
    assert_eq!(code, 201, "{}", String::from_utf8_lossy(&body));
    Json::parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

fn status_doc(addr: &str, id: &str) -> Json {
    let (code, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(code, 200);
    Json::parse(std::str::from_utf8(&body).unwrap()).unwrap()
}

fn phase_of(doc: &Json) -> String {
    doc.get("phase").unwrap().as_str().unwrap().to_string()
}

/// Pulls the full stream (blocks until the job is terminal) and returns
/// the `result` record's artifacts: (csv, xyz).
fn stream_result(addr: &str, id: &str) -> (String, String) {
    let (code, body) = http(addr, "GET", &format!("/jobs/{id}/stream"), "");
    assert_eq!(code, 200);
    let text = String::from_utf8(body).unwrap();
    for line in text.lines() {
        let rec = Json::parse(line).unwrap_or(Json::Null);
        if rec.get("type").map(|t| t.as_str().unwrap()) == Some("result") {
            return (
                rec.get("csv").unwrap().as_str().unwrap().to_string(),
                rec.get("xyz").unwrap().as_str().unwrap().to_string(),
            );
        }
    }
    panic!("no result record in stream for {id}:\n{text}");
}

/// Runs the single-shot CLI on the same deck text and returns the bytes of
/// its three artifacts: (csv, xyz, checkpoint).
fn cli_reference(seed: u64, max_steps: u64) -> (String, String, String) {
    let dir = temp_dir(&format!("ref-{seed}-{max_steps}"));
    std::fs::write(dir.join("deck.json"), deck_text(seed, max_steps, "out")).unwrap();
    let out = bin(&dir, &["-in", "deck.json"]).output().unwrap();
    assert!(
        out.status.success(),
        "reference run failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let read = |name: &str| std::fs::read_to_string(dir.join(name)).unwrap();
    let result = (read("out.csv"), read("out.xyz"), read("out.ckpt"));
    std::fs::remove_dir_all(&dir).ok();
    result
}

#[test]
fn concurrent_jobs_stream_bit_identical_artifacts_to_the_cli() {
    let dir = temp_dir("concurrent");
    let mut server = bin(
        &dir,
        &[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--state-dir",
            "state",
            "--max-concurrent",
            "2",
            "--thread-budget",
            "2",
        ],
    )
    .spawn()
    .unwrap();
    let addr = serve_addr(&mut server);

    // Two different decks, long enough to overlap on the two engine slots.
    let a = submit(&addr, &deck_text(11, 40, "a"));
    let b = submit(&addr, &deck_text(12, 40, "b"));

    // Watch for interleaved execution: both jobs running at once.
    let deadline = Instant::now() + Duration::from_secs(180);
    let mut overlapped = false;
    loop {
        let (pa, pb) = (phase_of(&status_doc(&addr, &a)), phase_of(&status_doc(&addr, &b)));
        overlapped |= pa == "running" && pb == "running";
        if pa == "completed" && pb == "completed" {
            break;
        }
        assert!(
            !(pa == "failed" || pb == "failed"),
            "a job failed: {} / {}",
            status_doc(&addr, &a).to_string(),
            status_doc(&addr, &b).to_string()
        );
        assert!(Instant::now() < deadline, "jobs never completed ({pa}/{pb})");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(overlapped, "the two jobs never ran concurrently");

    // Streamed artifacts and the served checkpoint, per job.
    for (id, seed) in [(a.as_str(), 11), (b.as_str(), 12)] {
        let (csv, xyz) = stream_result(&addr, id);
        let (code, ck) = http(&addr, "GET", &format!("/jobs/{id}/checkpoint"), "");
        assert_eq!(code, 200);
        let ck = String::from_utf8(ck).unwrap();
        let (ref_csv, ref_xyz, ref_ck) = cli_reference(seed, 40);
        assert_eq!(csv, ref_csv, "CSV differs from the CLI run (seed {seed})");
        assert_eq!(xyz, ref_xyz, "XYZ differs from the CLI run (seed {seed})");
        assert_eq!(ck, ref_ck, "checkpoint differs from the CLI run (seed {seed})");
    }

    // Drain and confirm a clean exit.
    let (code, _) = http(&addr, "POST", "/shutdown", "");
    assert_eq!(code, 202);
    let out = server.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("drained and stopped"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_job_then_restart_resumes_to_identical_checkpoint() {
    let dir = temp_dir("kill");
    let serve_args = [
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--state-dir",
        "state",
        "--max-concurrent",
        "1",
        "--thread-budget",
        "1",
    ];
    let mut server = bin(&dir, &serve_args).spawn().unwrap();
    let addr = serve_addr(&mut server);

    // Long enough that the kill lands mid-run, after some checkpoints.
    let id = submit(&addr, &deck_text(21, 60, "k"));
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let doc = status_doc(&addr, &id);
        let steps = doc.get("steps").unwrap().as_u64().unwrap();
        if steps >= 4 {
            assert_eq!(phase_of(&doc), "running", "{}", doc.to_string());
            break;
        }
        assert!(Instant::now() < deadline, "job never progressed: {}", doc.to_string());
        std::thread::sleep(Duration::from_millis(2));
    }
    // SIGKILL: no drain, no graceful checkpoint — the job recovers from
    // whatever chunk-boundary bundle persistence last committed.
    server.kill().unwrap();
    server.wait().unwrap();

    // Restart on the same state dir: the job is re-adopted and resumed.
    let mut revived = bin(&dir, &serve_args).spawn().unwrap();
    let addr = serve_addr(&mut revived);
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let doc = status_doc(&addr, &id);
        match phase_of(&doc).as_str() {
            "completed" => break,
            "failed" => panic!("resumed job failed: {}", doc.to_string()),
            _ => {}
        }
        assert!(Instant::now() < deadline, "resumed job never completed");
        std::thread::sleep(Duration::from_millis(20));
    }
    // The stream records the resume point and the trajectory artifacts
    // land byte-identical to an uninterrupted single-shot run.
    let (code, body) = http(&addr, "GET", &format!("/jobs/{id}/stream"), "");
    assert_eq!(code, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.lines().any(|l| l.contains("\"type\":\"started\"")
            && l.contains("\"resumed_at_step\":")
            && !l.contains("\"resumed_at_step\":null")),
        "no resume marker in stream:\n{text}"
    );
    let (csv, xyz) = stream_result(&addr, &id);
    let (code, ck) = http(&addr, "GET", &format!("/jobs/{id}/checkpoint"), "");
    assert_eq!(code, 200);
    let ck = String::from_utf8(ck).unwrap();
    let (ref_csv, ref_xyz, ref_ck) = cli_reference(21, 60);
    assert_eq!(ck, ref_ck, "resumed checkpoint differs from uninterrupted run");
    assert_eq!(csv, ref_csv, "resumed CSV differs from uninterrupted run");
    assert_eq!(xyz, ref_xyz, "resumed XYZ differs from uninterrupted run");

    let (code, _) = http(&addr, "POST", "/shutdown", "");
    assert_eq!(code, 202);
    let out = revived.wait_with_output().unwrap();
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
