//! Workspace dependency policy: every manifest stays path-only.
//!
//! The tier-1 gate (`cargo build --release && cargo test`) must pass on
//! hosts with no reachable crate registry, so no manifest may name a
//! registry dependency — neither the crates this PR removed (serde, rand,
//! rayon, proptest, criterion, ...) nor any future addition. This test
//! walks the root manifest and every `crates/*/Cargo.toml` and fails, with
//! the offending file and line, if a dependency entry is not `path`-based
//! or `workspace = true` (which resolves to a path in the root manifest).

use std::fs;
use std::path::{Path, PathBuf};

/// Registry crates the compat layer replaced; their reappearance under any
/// name form is an immediate failure even if someone vendors a path.
const BANNED: &[&str] = &[
    "serde",
    "serde_json",
    "rand",
    "rand_chacha",
    "rayon",
    "crossbeam",
    "crossbeam-channel",
    "parking_lot",
    "bytes",
    "proptest",
    "criterion",
];

fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory");
    for e in entries {
        let p = e.expect("dir entry").path().join("Cargo.toml");
        if p.is_file() {
            out.push(p);
        }
    }
    assert!(out.len() >= 12, "expected the full workspace, got {out:?}");
    out
}

/// True for `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, and `[target.'...'.dependencies]` headers.
fn is_dep_section(header: &str) -> bool {
    header == "workspace.dependencies"
        || header.ends_with("dependencies") && !header.contains("metadata")
}

/// A dependency value is acceptable when it resolves through the local
/// filesystem: `{ path = ... }`, `key.path = ...`, or `workspace = true`.
fn value_is_path_only(key_tail: &str, value: &str) -> bool {
    value.contains("path")
        || value.contains("workspace = true")
        || key_tail == "path"
        || (key_tail == "workspace" && value.trim() == "true")
}

#[test]
fn all_manifests_are_path_only() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = line[1..line.len() - 1].trim().to_string();
                continue;
            }
            if !is_dep_section(&section) {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            // `foo.workspace = true` / `foo.path = "..."` dotted forms.
            let (name, key_tail) = match key.split_once('.') {
                Some((n, tail)) => (n.trim(), tail.trim()),
                None => (key, ""),
            };
            let name = name.trim_matches('"');
            if BANNED.contains(&name) {
                violations.push(format!(
                    "{}:{}: banned registry dependency `{name}`",
                    manifest.display(),
                    lineno + 1
                ));
                continue;
            }
            if !value_is_path_only(key_tail, value) {
                violations.push(format!(
                    "{}:{}: `{name}` does not resolve by path: {}",
                    manifest.display(),
                    lineno + 1,
                    line
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "registry dependencies are banned by the std-only policy \
         (DESIGN.md); offending entries:\n{}",
        violations.join("\n")
    );
}

#[test]
fn policy_scanner_catches_a_registry_dep() {
    // Self-test of the scanner logic on a synthetic manifest fragment.
    assert!(is_dep_section("dependencies"));
    assert!(is_dep_section("dev-dependencies"));
    assert!(is_dep_section("workspace.dependencies"));
    assert!(!is_dep_section("package.metadata.dependencies"));
    assert!(!is_dep_section("package"));
    assert!(value_is_path_only("", r#" { path = "../compat" }"#));
    assert!(value_is_path_only("workspace", " true"));
    assert!(!value_is_path_only("", r#" "1.0""#));
    assert!(!value_is_path_only("", r#" { version = "1.0" }"#));
}
