//! Transport parity and fault handling at the binary level: the same deck
//! run (a) with in-process rank threads and (b) as separate coordinator +
//! worker processes over loopback TCP must produce a bit-identical
//! trajectory and byte-identical checkpoint; killing a worker process
//! mid-run must surface one error naming that rank, and the run must be
//! restartable from its last checkpoint to the same final state.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Writes the shared deck into `dir`, parameterised by output basename and
/// simulated length. `train_small` is deterministic, so every process of a
/// run (and the in-process reference) builds the identical model.
fn write_deck(dir: &Path, name: &str, base: &str, max_time: f64, resume_from: &str) -> PathBuf {
    let path = dir.join(name);
    let deck = format!(
        r#"{{"cells": 20, "ranks": 2, "t_stop": 2e-8, "max_time": {max_time},
            "model": {{"source": "train_small", "seed": 9}},
            "cu_fraction": 0.03, "vacancy_fraction": 0.002,
            "temperature": 800.0, "seed": 7,
            "xyz_output": "{base}.xyz", "csv_output": "",
            "checkpoint_output": "{base}.ckpt",
            "checkpoint_every_cycles": 2,
            "recv_timeout_ms": 30000,
            "resume_from": "{resume_from}"}}"#
    );
    std::fs::write(&path, deck).unwrap();
    path
}

fn bin(dir: &Path, args: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_tensorkmc"));
    c.current_dir(dir)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    c
}

/// Waits for the coordinator to print its bound address.
fn coordinator_addr(child: &mut Child) -> String {
    let stdout = child.stdout.as_mut().unwrap();
    let mut text = String::new();
    let mut buf = [0u8; 256];
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let n = stdout.read(&mut buf).unwrap();
        text.push_str(std::str::from_utf8(&buf[..n]).unwrap());
        if let Some(line) = text.lines().find(|l| l.contains("listening on ")) {
            let addr = line.split("listening on ").nth(1).unwrap();
            return addr.split_whitespace().next().unwrap().to_string();
        }
        assert!(
            n > 0 && Instant::now() < deadline,
            "coordinator never announced its address; output so far:\n{text}"
        );
    }
}

fn wait_ok(child: Child, what: &str) {
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{what} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Launches coordinator + 2 workers in `dir` on the given deck; returns the
/// running coordinator and workers.
fn launch_fabric(dir: &Path, deck: &str) -> (Child, String, Vec<Child>) {
    let mut coord = bin(dir, &["-in", deck, "--coordinator", "127.0.0.1:0"])
        .spawn()
        .unwrap();
    let addr = coordinator_addr(&mut coord);
    let workers = (0..2)
        .map(|r| {
            bin(
                dir,
                &[
                    "-in",
                    deck,
                    "--coordinator",
                    &addr,
                    "--rank",
                    &r.to_string(),
                ],
            )
            .spawn()
            .unwrap()
        })
        .collect();
    (coord, addr, workers)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tkmc-transport-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn multi_process_run_matches_in_process_bit_for_bit() {
    let dir = temp_dir("parity");
    let deck_in = write_deck(&dir, "deck_in.json", "inproc", 1e-7, "");
    let deck_tcp = write_deck(&dir, "deck_tcp.json", "tcp", 1e-7, "");

    // Reference: 2 in-process rank threads.
    wait_ok(
        bin(&dir, &["-in", deck_in.to_str().unwrap()])
            .spawn()
            .unwrap(),
        "in-process run",
    );

    // Same deck as 3 OS processes over loopback TCP.
    let (coord, _, workers) = launch_fabric(&dir, deck_tcp.to_str().unwrap());
    for (i, w) in workers.into_iter().enumerate() {
        wait_ok(w, &format!("worker {i}"));
    }
    wait_ok(coord, "coordinator");

    let a = std::fs::read(dir.join("inproc.ckpt")).unwrap();
    let b = std::fs::read(dir.join("tcp.ckpt")).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "checkpoints must be byte-identical across transports");
    let xa = std::fs::read(dir.join("inproc.xyz")).unwrap();
    let xb = std::fs::read(dir.join("tcp.xyz")).unwrap();
    assert_eq!(xa, xb, "snapshots must be bit-identical across transports");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_worker_is_attributed_and_the_run_resumes_from_checkpoint() {
    let dir = temp_dir("fault");
    // Long enough that the kill lands mid-run: 20 cycles, checkpoint
    // every 2.
    let deck_ref = write_deck(&dir, "deck_ref.json", "reference", 4e-7, "");
    let deck_tcp = write_deck(&dir, "deck_tcp.json", "tcp", 4e-7, "");

    // The uninterrupted reference (in-process; parity with TCP is pinned
    // by the other test).
    wait_ok(
        bin(&dir, &["-in", deck_ref.to_str().unwrap()])
            .spawn()
            .unwrap(),
        "reference run",
    );

    // Fabric run; SIGKILL worker 1 as soon as the first mid-run checkpoint
    // lands on disk.
    let (coord, _, mut workers) = launch_fabric(&dir, deck_tcp.to_str().unwrap());
    let ckpt = dir.join("tcp.ckpt");
    let deadline = Instant::now() + Duration::from_secs(300);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut victim = workers.pop().unwrap(); // rank 1
    victim.kill().unwrap();
    victim.wait().unwrap();

    // One attributable error at the coordinator, naming the dead rank.
    let out = coord.wait_with_output().unwrap();
    assert!(!out.status.success(), "coordinator must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rank 1 was lost"),
        "coordinator names the killed rank once: {stderr}"
    );
    assert_eq!(
        stderr.matches("rank 1").count(),
        1,
        "no error cascade: {stderr}"
    );
    // The surviving worker unwinds with an error too (its own view), but
    // must not hang.
    let w0 = workers.pop().unwrap().wait_with_output().unwrap();
    assert!(!w0.status.success(), "surviving worker unwinds");

    // Restart the whole fabric from the last checkpoint; the resumed run
    // must land exactly where the uninterrupted reference did.
    let deck_resume = write_deck(&dir, "deck_resume.json", "tcp", 4e-7, "tcp.ckpt");
    let (coord, _, workers) = launch_fabric(&dir, deck_resume.to_str().unwrap());
    for (i, w) in workers.into_iter().enumerate() {
        wait_ok(w, &format!("resumed worker {i}"));
    }
    wait_ok(coord, "resumed coordinator");
    let resumed = std::fs::read(&ckpt).unwrap();
    let reference = std::fs::read(dir.join("reference.ckpt")).unwrap();
    assert_eq!(
        resumed, reference,
        "resume must replay the uninterrupted trajectory byte for byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}
