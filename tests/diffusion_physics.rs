//! Quantitative physics validation across the whole stack: a vacancy in
//! pure bcc Fe performs an unbiased 1NN random walk with
//! `Γ_tot = 8·Γ₀·exp(−E_a⁰(Fe)/k_BT)` (every ΔE vanishes by symmetry), so
//! the engine-produced MSD must match `Γ_tot·d²·t` and the residence-time
//! clock must average `1/Γ_tot` per hop.

use std::sync::Arc;
use tensorkmc::analysis::{random_walk_msd_slope, MsdTracker};
use tensorkmc::core::{KmcConfig, KmcEngine, RateLaw};
use tensorkmc::lattice::{HalfVec, PeriodicBox, RegionGeometry, SiteArray, Species};
use tensorkmc::operators::EamLatticeEvaluator;
use tensorkmc::potential::EamPotential;

#[test]
fn pure_fe_vacancy_walk_matches_theory() {
    let pbox = PeriodicBox::new(12, 12, 12, 2.87).unwrap();
    let mut lattice = SiteArray::pure_iron(pbox);
    let start = HalfVec::new(6, 6, 6);
    lattice.set_at(start, Species::Vacancy);

    let law = RateLaw::at_temperature(800.0);
    let geom = Arc::new(RegionGeometry::new(2.87, 6.5).unwrap());
    let eval = EamLatticeEvaluator::new(EamPotential::fe_cu(), Arc::clone(&geom));
    let mut engine = KmcEngine::new(
        lattice,
        geom,
        eval,
        KmcConfig {
            law,
            ..KmcConfig::thermal_aging_573k()
        },
        42,
    )
    .unwrap();

    let gamma_total = 8.0 * law.rate(Species::Fe, 0.0);

    // Clock: E[t after N hops] = 1/Γ_tot per hop. (Smaller workload under
    // debug builds; the statistics stay deterministic under fixed seeds.)
    let steps = if cfg!(debug_assertions) {
        1_200u64
    } else {
        3_000
    };
    engine.run_steps(steps).unwrap();
    let expect_t = steps as f64 / gamma_total;
    let rel = (engine.time() - expect_t).abs() / expect_t;
    assert!(
        rel < 0.10,
        "clock {:.3e} vs {:.3e}",
        engine.time(),
        expect_t
    );
    assert_eq!(engine.stats().fe_hops, steps, "unbiased pure-Fe walk");

    // Transport: a single walker's MSD is far too noisy for a slope fit, so
    // average over independent replicas (fresh seeds, same physics).
    let (n_replicas, steps_each) = if cfg!(debug_assertions) {
        (12, 250u64)
    } else {
        (24, 600)
    };
    let mut tracker = MsdTracker::new(pbox, vec![start; n_replicas]);
    let mut mean_time = 0.0;
    for (r, seed) in (0..n_replicas).zip(100u64..) {
        let mut lat = SiteArray::pure_iron(pbox);
        lat.set_at(start, Species::Vacancy);
        let geom = Arc::new(RegionGeometry::new(2.87, 6.5).unwrap());
        let eval = EamLatticeEvaluator::new(EamPotential::fe_cu(), Arc::clone(&geom));
        let mut e = KmcEngine::new(
            lat,
            geom,
            eval,
            KmcConfig {
                law,
                ..KmcConfig::thermal_aging_573k()
            },
            seed,
        )
        .unwrap();
        for _ in 0..steps_each {
            let ev = e.step().unwrap();
            tracker.record_move(r, ev.to);
        }
        mean_time += e.time() / n_replicas as f64;
    }
    // One effective sample at the mean final time (plus the origin) gives a
    // two-point slope estimate over the replica-averaged MSD.
    tracker.samples.push((0.0, 0.0));
    tracker.sample(mean_time);
    let slope = tracker.msd_slope();
    let theory = random_walk_msd_slope(gamma_total, 2.87);
    // Replica-mean of R² has relative std ≈ 0.82/√n; 3σ bounds.
    let tol = 3.0 * 0.82 / (n_replicas as f64).sqrt();
    assert!(
        (slope - theory).abs() / theory < tol,
        "MSD slope {slope:.3e} vs theory {theory:.3e} (tol {tol:.2})"
    );
}
