//! End-to-end integration: train → simulate → analyse, and the
//! direct-vs-Sunway evaluator agreement at the engine level.

use std::sync::Arc;
use tensorkmc::analysis::{analyze_clusters, ObservableLog};
use tensorkmc::core::{EvalMode, KmcConfig, KmcEngine};
use tensorkmc::lattice::{AlloyComposition, PeriodicBox, SiteArray, Species};
use tensorkmc::operators::{NnpDirectEvaluator, SunwayEvaluator};
use tensorkmc::quickstart;
use tensorkmc::sunway::CgConfig;
use tensorkmc_compat::rng::StdRng;

#[test]
fn train_simulate_analyse_pipeline() {
    let model = quickstart::train_small_model(1);
    let mut engine = quickstart::engine_with(
        &model,
        12,
        AlloyComposition {
            cu_fraction: 0.0134,
            vacancy_fraction: 5e-4,
        },
        573.0,
        EvalMode::Cached,
        1,
    )
    .unwrap();
    let before = engine.lattice().census();
    let volume = engine.lattice().pbox().volume_m3();
    let shells = engine.geometry().shells.clone();
    let mut log = ObservableLog::new();
    for _ in 0..4 {
        engine.run_steps(300).unwrap();
        let r = analyze_clusters(engine.lattice(), Species::Cu, &shells, 1);
        log.push(engine.time(), engine.stats().steps, &r, volume);
    }
    assert_eq!(engine.lattice().census(), before, "conservation");
    assert!(engine.time() > 0.0);
    assert_eq!(log.rows.len(), 4);
    assert!(log.rows.windows(2).all(|w| w[0].time < w[1].time));
}

#[test]
fn sunway_evaluator_drives_the_engine_like_the_direct_one() {
    // The simulated-CG pipeline (CPE features + big fusion) must produce
    // the same trajectory as the host pipeline: both are evaluated in f32,
    // in the same summation order per site, so rates agree bit-for-bit in
    // practice on short runs.
    let model = quickstart::train_small_model(2);
    let geom = quickstart::geometry_for(&model);
    let pbox = PeriodicBox::new(12, 12, 12, 2.87).unwrap();
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 5e-4,
    };
    let lattice = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(5)).unwrap();

    let mut direct = KmcEngine::new(
        lattice.clone(),
        Arc::clone(&geom),
        NnpDirectEvaluator::new(&model, Arc::clone(&geom)),
        KmcConfig::thermal_aging_573k(),
        17,
    )
    .unwrap();
    let mut sunway = KmcEngine::new(
        lattice,
        Arc::clone(&geom),
        SunwayEvaluator::new(&model, Arc::clone(&geom), CgConfig::default()),
        KmcConfig::thermal_aging_573k(),
        17,
    )
    .unwrap();

    for step in 0..40 {
        let a = direct.step().unwrap();
        let b = sunway.step().unwrap();
        assert_eq!(a.from, b.from, "step {step}");
        assert_eq!(a.to, b.to, "step {step}");
        assert_eq!(a.species, b.species, "step {step}");
    }
    assert_eq!(direct.lattice().as_slice(), sunway.lattice().as_slice());
}

#[test]
fn cu_migrates_faster_than_fe_in_the_trained_model() {
    // Statistical physics check spanning potential -> nnp -> core: with
    // E_a0(Cu) < E_a0(Fe), Cu hops must be over-represented relative to the
    // 1.34 at.% composition.
    let model = quickstart::train_small_model(3);
    let mut engine = quickstart::engine_with(
        &model,
        12,
        AlloyComposition {
            cu_fraction: 0.0134,
            vacancy_fraction: 3e-4,
        },
        573.0,
        EvalMode::Cached,
        3,
    )
    .unwrap();
    engine.run_steps(2_000).unwrap();
    let s = engine.stats();
    let cu_share = s.cu_hops as f64 / s.steps as f64;
    assert!(
        cu_share > 0.0134,
        "Cu hop share {cu_share} must exceed the Cu concentration"
    );
}
