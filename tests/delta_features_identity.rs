//! Tier-1 guarantee of the delta-state feature operator: with
//! `delta_features` on — affected rows recomputed, unique rows inferred
//! once and scattered back — the trajectory is **bit-identical** to the
//! dense (1+8)·N_region path, at every batching and threading setting.
//!
//! The delta path recomputes each affected row with the same
//! `site_features_into` accumulation order as the dense path, reuses the
//! state-0 energy f32 verbatim for unaffected rows, and interns rows by
//! their exact bit patterns before inference — so every hop, every
//! residence time, and the final checkpoint must match to the last bit,
//! not merely within tolerance.

use tensorkmc::core::{EvalMode, KmcEngine};
use tensorkmc::lattice::AlloyComposition;
use tensorkmc::operators::NnpDirectEvaluator;
use tensorkmc::quickstart;
use tensorkmc_compat::codec::JsonCodec;

const STEPS: u64 = 500;

fn engine(
    model: &tensorkmc::nnp::NnpModel,
    delta: bool,
    batch_systems: usize,
    refresh_threads: usize,
) -> KmcEngine<NnpDirectEvaluator> {
    // Vacancy-dense enough that refreshes routinely cover several systems,
    // exercising the shared interner across a batch and the per-worker
    // scatter buffers.
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 4e-3,
    };
    let mut e = quickstart::engine_with(model, 10, comp, 573.0, EvalMode::Cached, 11)
        .expect("engine builds");
    e.set_delta_features(delta);
    e.set_batch_systems(batch_systems);
    e.set_refresh_threads(refresh_threads);
    e
}

/// Run `STEPS` hops on a dense/delta pair with identical execution knobs
/// and demand bit-equality of every hop and of the final checkpoint.
fn assert_delta_matches_dense(batch_systems: usize, refresh_threads: usize) {
    let model = quickstart::train_small_model(9);
    let mut dense = engine(&model, false, batch_systems, refresh_threads);
    let mut delta = engine(&model, true, batch_systems, refresh_threads);

    for step in 0..STEPS {
        let a = dense.step().expect("dense step");
        let b = delta.step().expect("delta step");
        let ctx = format!("batch={batch_systems} threads={refresh_threads} step={step}");
        assert_eq!(a.step, b.step, "step index ({ctx})");
        assert_eq!(a.from, b.from, "hop origin ({ctx})");
        assert_eq!(a.to, b.to, "hop destination ({ctx})");
        assert_eq!(a.species, b.species, "hopping species ({ctx})");
        assert_eq!(
            a.time.to_bits(),
            b.time.to_bits(),
            "residence time must be bit-exact ({ctx}): {} vs {}",
            a.time,
            b.time
        );
    }

    // `delta_features` is an execution detail (@skip in the codec), so the
    // two checkpoints must be byte-identical JSON — either run can resume
    // the other's checkpoint and continue on either path.
    assert_eq!(
        dense.checkpoint().to_json_string(),
        delta.checkpoint().to_json_string(),
        "checkpoint diverged after {STEPS} bit-identical steps \
         (batch={batch_systems} threads={refresh_threads})"
    );
    assert_eq!(dense.lattice().as_slice(), delta.lattice().as_slice());
}

#[test]
fn delta_features_replay_the_dense_trajectory_per_system_serial() {
    assert_delta_matches_dense(1, 1);
}

#[test]
fn delta_features_replay_the_dense_trajectory_capped_batch_serial() {
    assert_delta_matches_dense(7, 1);
}

#[test]
fn delta_features_replay_the_dense_trajectory_unbounded_batch_serial() {
    assert_delta_matches_dense(0, 1);
}

#[test]
fn delta_features_replay_the_dense_trajectory_per_system_parallel() {
    assert_delta_matches_dense(1, 4);
}

#[test]
fn delta_features_replay_the_dense_trajectory_unbounded_batch_parallel() {
    assert_delta_matches_dense(0, 4);
}
