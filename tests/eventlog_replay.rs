//! Trajectory provenance: record a live engine's hops into the binary event
//! log, serialise it, and replay it onto the initial configuration — the
//! result must equal the engine's final state exactly.

use tensorkmc::core::EventLog;
use tensorkmc::lattice::AlloyComposition;
use tensorkmc::quickstart;

#[test]
fn engine_trajectory_survives_log_encode_replay() {
    let model = quickstart::train_small_model(13);
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 5e-4,
    };
    let mut engine = quickstart::engine_with(
        &model,
        10,
        comp,
        573.0,
        tensorkmc::core::EvalMode::Cached,
        13,
    )
    .unwrap();
    let initial = engine.lattice().clone();
    let pbox = *initial.pbox();

    let mut log = EventLog::new();
    for _ in 0..500 {
        let ev = engine.step().unwrap();
        log.push(&ev, &pbox);
    }

    // Serialise and replay from bytes.
    let bytes = log.encode();
    assert_eq!(bytes.len(), 12 + 500 * 24, "24 bytes per event");
    let decoded = EventLog::decode(bytes).unwrap();
    let (replayed, events) = decoded.replay(&initial).unwrap();
    assert_eq!(replayed.as_slice(), engine.lattice().as_slice());
    assert_eq!(events.len(), 500);
    // Times are monotone and match the engine's clock at the end.
    assert!(events.windows(2).all(|w| w[0].time < w[1].time));
    assert!((events.last().unwrap().time - engine.time()).abs() < 1e-18 + 1e-12 * engine.time());
}
