//! Tier-1 guarantee of the parallel vacancy-cache refresh: with any worker
//! count, the trajectory is **bit-identical** to the serial engine.
//!
//! The parallel path refreshes stale systems concurrently but writes the
//! results (and the propensity-tree updates, via `SumTree::set_many`) back
//! in ascending system order — exactly the float-op sequence the serial
//! loop executes. So every hop, every residence time, and the final
//! checkpoint must match to the last bit, not merely within tolerance.

use tensorkmc::core::{EvalMode, KmcEngine};
use tensorkmc::lattice::AlloyComposition;
use tensorkmc::operators::NnpDirectEvaluator;
use tensorkmc::quickstart;
use tensorkmc_compat::codec::JsonCodec;

const STEPS: u64 = 500;

fn engine(model: &tensorkmc::nnp::NnpModel, threads: usize) -> KmcEngine<NnpDirectEvaluator> {
    // Vacancy-dense enough that every hop invalidates a multi-system batch,
    // so the parallel fan-out actually engages (batch >= 2).
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 4e-3,
    };
    let mut e = quickstart::engine_with(model, 10, comp, 573.0, EvalMode::Cached, 11)
        .expect("engine builds");
    e.set_refresh_threads(threads);
    e
}

#[test]
fn parallel_refresh_replays_the_serial_trajectory_bit_for_bit() {
    let model = quickstart::train_small_model(9);
    let mut serial = engine(&model, 1);
    let mut parallel = engine(&model, 4);

    for step in 0..STEPS {
        let a = serial.step().expect("serial step");
        let b = parallel.step().expect("parallel step");
        assert_eq!(a.step, b.step, "step index at {step}");
        assert_eq!(a.from, b.from, "hop origin at step {step}");
        assert_eq!(a.to, b.to, "hop destination at step {step}");
        assert_eq!(a.species, b.species, "hopping species at step {step}");
        assert_eq!(
            a.time.to_bits(),
            b.time.to_bits(),
            "residence time must be bit-exact at step {step}: {} vs {}",
            a.time,
            b.time
        );
    }

    // The refresh knob is an execution detail (@skip in the codec), so the
    // two checkpoints must be byte-identical JSON — a serial run can resume
    // a parallel run's checkpoint and vice versa.
    assert_eq!(
        serial.checkpoint().to_json_string(),
        parallel.checkpoint().to_json_string(),
        "checkpoints diverged after {STEPS} bit-identical steps"
    );
    assert_eq!(serial.lattice().as_slice(), parallel.lattice().as_slice());
}
