//! Integration of the parallel driver with the rest of the stack.

use std::sync::Arc;
use tensorkmc::analysis::analyze_clusters;
use tensorkmc::lattice::{AlloyComposition, PeriodicBox, SiteArray, Species};
use tensorkmc::operators::NnpDirectEvaluator;
use tensorkmc::parallel::{run_sublattice, Decomposition, ParallelConfig};
use tensorkmc::quickstart;
use tensorkmc_compat::rng::StdRng;

fn fixture(seed: u64) -> (SiteArray, tensorkmc::nnp::NnpModel) {
    let model = quickstart::train_small_model(seed);
    let pbox = PeriodicBox::new(24, 24, 24, 2.87).unwrap();
    let comp = AlloyComposition {
        cu_fraction: 0.0134,
        vacancy_fraction: 1e-3,
    };
    let lattice = SiteArray::random_alloy(pbox, comp, &mut StdRng::seed_from_u64(seed)).unwrap();
    (lattice, model)
}

#[test]
fn parallel_aging_conserves_and_precipitates() {
    let (lattice, model) = fixture(4);
    let geom = quickstart::geometry_for(&model);
    let before = lattice.census();
    let shells = geom.shells.clone();
    let r0 = analyze_clusters(&lattice, Species::Cu, &shells, 1);

    let decomp = Decomposition::new(*lattice.pbox(), (2, 2, 1), &geom).unwrap();
    let cfg = ParallelConfig::paper_scaling(6e-7, 13);
    let (out, stats) = run_sublattice(
        &lattice,
        Arc::clone(&geom),
        &decomp,
        |_r| NnpDirectEvaluator::new(&model, Arc::clone(&geom)),
        &cfg,
    )
    .unwrap();

    assert_eq!(out.census(), before, "conservation across ranks");
    assert!(stats.total_events() > 100, "parallel run made progress");
    assert!(stats.halo_bytes > 0);

    // Thermal aging with a mobile vacancy population should not *increase*
    // the isolated-Cu count beyond noise (precipitation direction).
    let r1 = analyze_clusters(&out, Species::Cu, &shells, 1);
    assert!(
        r1.isolated <= r0.isolated + r0.total_atoms / 10,
        "isolated {} -> {}",
        r0.isolated,
        r1.isolated
    );
}

#[test]
fn rank_grids_are_interchangeable_for_conserved_quantities() {
    let (lattice, model) = fixture(6);
    let geom = quickstart::geometry_for(&model);
    let cfg = ParallelConfig::paper_scaling(2e-7, 21);
    let mut censuses = Vec::new();
    for grid in [(1, 1, 1), (2, 1, 1)] {
        let decomp = Decomposition::new(*lattice.pbox(), grid, &geom).unwrap();
        let (out, _) = run_sublattice(
            &lattice,
            Arc::clone(&geom),
            &decomp,
            |_r| NnpDirectEvaluator::new(&model, Arc::clone(&geom)),
            &cfg,
        )
        .unwrap();
        censuses.push(out.census());
    }
    assert_eq!(censuses[0], censuses[1]);
    assert_eq!(censuses[0], lattice.census());
}
